package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/bfs"
	"repro/internal/checkpoint"
	"repro/internal/crypto"
	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/pbft"
	"repro/internal/perfmodel"
	"repro/internal/simnet"
	"repro/internal/statemachine"
	"repro/internal/workload"
)

// E5Checkpoint measures checkpoint creation cost directly on the manager:
// cost must track the number of pages modified per epoch, not state size
// (Table 8.12's point).
func E5Checkpoint(scale int) []*Table {
	t := &Table{
		ID:     "E5",
		Title:  "checkpoint creation cost (per checkpoint)",
		Header: []string{"state", "pages touched", "take time (us)", "cow copies", "digests"},
	}
	iters := 5 * scale
	for _, mb := range []int{1, 4, 16} {
		size := mb << 20
		pageSize := 4096
		pages := size / pageSize
		for _, frac := range []float64{0.01, 0.10, 1.00} {
			touched := int(float64(pages) * frac)
			if touched < 1 {
				touched = 1
			}
			region := statemachine.NewRegion(size, pageSize)
			mgr := checkpoint.NewManager(region, 16)
			var total time.Duration
			var copies, digs uint64
			seq := message.Seq(0)
			for i := 0; i < iters; i++ {
				for p := 0; p < touched; p++ {
					region.WriteAt(p*pageSize+(i%pageSize), []byte{byte(i)})
				}
				c0, d0 := mgr.PagesCopied, mgr.PagesDigested
				seq += 128
				t0 := time.Now()
				mgr.Take(seq, nil)
				total += time.Since(t0)
				copies += mgr.PagesCopied - c0
				digs += mgr.PagesDigested - d0
				mgr.DiscardBefore(seq) // keep snapshot count bounded
			}
			t.Add(fmt.Sprintf("%dMB", mb), fmt.Sprintf("%d (%.0f%%)", touched, frac*100),
				us(total/time.Duration(iters)),
				fmt.Sprintf("%d", copies/uint64(iters)),
				fmt.Sprintf("%d", digs/uint64(iters)))
		}
	}
	t.Note("paper shape: cost proportional to modified pages (copy-on-write + incremental digests), independent of total state size")
	return []*Table{t, e5Live(scale)}
}

// e5Live measures the same checkpoint counters at a LIVE replica through
// Replica.Metrics() — copy-on-write copies, page digests, and cumulative
// digest latency now surface without reaching into the manager (which the
// staged executor owns). The inline/staged pair shows the executor moving
// that cost off the event loop without changing what is digested.
func e5Live(scale int) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "checkpointing at a live replica (via Replica.Metrics())",
		Header: []string{"execution", "ckpts", "cow copies", "digests", "digest time (us/ckpt)", "exec stalls"},
	}
	for _, staged := range []bool{false, true} {
		name := "inline"
		if staged {
			name = "staged"
		}
		cfg := benchConfig(pbft.ModeMAC)
		cfg.CheckpointInterval = 8
		cfg.LogWindow = 16
		cfg.Opt.ExecPipeline = staged
		c := pbft.NewLocalCluster(4, cfg, kvservice.Factory, nil)
		c.Start()
		cl := c.NewClient()
		blob := make([]byte, 2048)
		for i := 0; i < 48*scale; i++ {
			blob[0] = byte(i)
			if _, err := cl.Invoke(kvservice.WriteBlob(blob), false); err != nil {
				t.Note("%s run truncated at op %d: %v", name, i, err)
				break
			}
		}
		m := c.Replica(1).Metrics()
		perCkpt := "-"
		if m.CheckpointsTaken > 0 {
			perCkpt = us(m.CkptDigestTime / time.Duration(m.CheckpointsTaken))
		}
		t.Add(name, fmt.Sprintf("%d", m.CheckpointsTaken),
			fmt.Sprintf("%d", m.PagesCopied), fmt.Sprintf("%d", m.PagesDigested),
			perCkpt, fmt.Sprintf("%d", m.ExecStalls))
		c.Stop()
	}
	t.Note("staged rows run checkpoint digesting on the executor goroutine; counters flow through Replica.Metrics() either way")
	return t
}

// E6StateTransfer measures how long a lagging replica takes to fetch state
// as a function of how much of it changed while it was partitioned away.
func E6StateTransfer(scale int) []*Table {
	t := &Table{
		ID:     "E6",
		Title:  "state transfer: catch-up after a partition",
		Header: []string{"ops while away", "bytes written", "catch-up (ms)", "pages fetched"},
	}
	for _, ops := range []int{20, 40, 80} {
		n := ops * scale
		cfg := benchConfig(pbft.ModeMAC)
		cfg.CheckpointInterval = 8
		cfg.LogWindow = 16
		cfg.Opt.Batching = false
		c := pbft.NewLocalCluster(4, cfg, kvservice.Factory, nil)
		c.Start()
		cl := c.NewClient()
		cl.MaxRetries = 20

		c.Net.Isolate(3)
		blob := make([]byte, 2048)
		for i := 0; i < n; i++ {
			blob[0] = byte(i)
			if _, err := cl.Invoke(kvservice.WriteBlob(blob), false); err != nil {
				break
			}
		}
		heal := time.Now()
		c.Net.Heal()
		// Wait for replica 3 to reach the same executed height.
		target := c.Replica(0).LastExecuted()
		var catchUp time.Duration
		for {
			if c.Replica(3).LastExecuted() >= target {
				catchUp = time.Since(heal)
				break
			}
			if time.Since(heal) > 30*time.Second {
				catchUp = -1
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		m := c.Replica(3).Metrics()
		t.Add(fmt.Sprintf("%d", n), fmt.Sprintf("%d", n*2048),
			ms(catchUp), fmt.Sprintf("%d", m.PagesFetched))
		c.Stop()
	}
	t.Note("paper shape: transfer time grows with the amount of out-of-date state; only differing partitions travel")
	return []*Table{t, e6CatchUpUnderLoad(scale)}
}

// e6CatchUpUnderLoad measures the recovery-dominates-practice scenario: a
// rejoining replica whose log window was collected cluster-wide must catch a
// cluster that KEEPS serving write traffic, over links with real latency.
// The serial engine (FetchWindow=1) pays one round trip per differing
// partition; the windowed engine keeps 8 fetches in flight across distinct
// repliers, so the same transfer costs measurably fewer round-trip cycles.
// The transfer-observability metrics (LastTransferTime / TransferBytes /
// FetchRetries) surface through Replica.Metrics() like the checkpoint
// counters in the E5 live-replica table.
func e6CatchUpUnderLoad(scale int) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "catch-up under load: windowed vs serial partition fetch (1ms links)",
		Header: []string{"fetch window", "catch-up (ms)", "transfer (ms)", "pages", "KB moved", "retries"},
	}
	for _, w := range []int{1, 8} {
		cfg := benchConfig(pbft.ModeMAC)
		cfg.CheckpointInterval = 8
		cfg.LogWindow = 16
		cfg.Opt.FetchWindow = w
		net := simnet.New(simnet.WithSeed(11),
			simnet.WithDefaults(simnet.LinkConfig{Latency: time.Millisecond}))
		c := pbft.NewCluster(net, cfg, 4, kvservice.Factory, nil)
		c.Start()
		cl := c.NewClient()
		cl.MaxRetries = 20

		// While the laggard is away, dirty a spread of blob pages and run
		// far past the log window so rejoin requires a real transfer.
		c.Net.Isolate(3)
		blob := make([]byte, 2048)
		for i := 0; i < 40*scale; i++ {
			blob[0] = byte(i)
			if _, err := cl.Invoke(kvservice.WriteBlob(blob), false); err != nil {
				t.Note("window=%d setup truncated at op %d: %v", w, i, err)
				break
			}
		}

		// Background writes keep flowing while the laggard catches up.
		stop := make(chan struct{})
		done := make(chan struct{})
		loader := c.NewClient()
		loader.MaxRetries = 60
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
				}
				loader.Invoke(kvservice.WriteBlob(blob), false) //nolint:errcheck
			}
		}()

		heal := time.Now()
		c.Net.Heal()
		var catchUp time.Duration
		for {
			frontier := c.Replica(0).LastExecuted()
			if c.Replica(3).LastExecuted() >= frontier {
				catchUp = time.Since(heal)
				break
			}
			if time.Since(heal) > 60*time.Second {
				catchUp = -1
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		close(stop)
		<-done
		m := c.Replica(3).Metrics()
		t.Add(fmt.Sprintf("%d", w), ms(catchUp), ms(m.LastTransferTime),
			fmt.Sprintf("%d", m.PagesFetched),
			fmt.Sprintf("%d", m.TransferBytes/1024),
			fmt.Sprintf("%d", m.FetchRetries))
		c.Stop()
		net.Close()
	}
	t.Note("catch-up = heal to frontier reached while writes continue; window=8 overlaps fetch round trips that window=1 serializes")
	return t
}

// E7ViewChange measures client-visible failover time when the primary dies,
// idle and under load.
func E7ViewChange(scale int) []*Table {
	t := &Table{
		ID:     "E7",
		Title:  "view change: client-visible failover after primary failure",
		Header: []string{"condition", "trial", "failover (ms)", "view changes"},
	}
	trials := 2 * scale
	for _, loaded := range []bool{false, true} {
		cond := "idle"
		if loaded {
			cond = "loaded"
		}
		for trial := 0; trial < trials; trial++ {
			cfg := benchConfig(pbft.ModeMAC)
			cfg.ViewChangeTimeout = 100 * time.Millisecond
			c := pbft.NewLocalCluster(4, cfg, kvservice.Factory, nil)
			c.Start()
			cl := c.NewClient()
			cl.RetryTimeout = 60 * time.Millisecond
			cl.MaxRetries = 40

			if _, err := cl.Invoke(kvservice.Incr(), false); err != nil {
				c.Stop()
				continue
			}
			stopLoad := make(chan struct{})
			if loaded {
				for i := 0; i < 4; i++ {
					lc := c.NewClient()
					lc.RetryTimeout = 60 * time.Millisecond
					lc.MaxRetries = 40
					go func() {
						for {
							select {
							case <-stopLoad:
								return
							default:
								lc.Invoke(kvservice.Incr(), false) //nolint:errcheck
							}
						}
					}()
				}
			}
			c.Net.Isolate(0)
			t0 := time.Now()
			_, err := cl.Invoke(kvservice.Incr(), false)
			fail := time.Since(t0)
			close(stopLoad)
			vcs := c.Replica(1).Metrics().ViewChanges
			if err != nil {
				t.Add(cond, fmt.Sprintf("%d", trial), "timeout", fmt.Sprintf("%d", vcs))
			} else {
				t.Add(cond, fmt.Sprintf("%d", trial), ms(fail), fmt.Sprintf("%d", vcs))
			}
			c.Stop()
		}
	}
	t.Note("failover ≈ view-change timeout + new-view protocol; paper reports view changes complete in tens of ms once triggered")
	return []*Table{t}
}

// E8BFS regenerates the Andrew-benchmark comparison: BFS (with and without
// the read-only optimization) against the unreplicated baseline.
func E8BFS(scale int) []*Table {
	t := &Table{
		ID:     "E8",
		Title:  fmt.Sprintf("BFS: Andrew-style benchmark, scale %d (times in ms)", scale),
		Header: []string{"phase", "BFS", "BFS-strict", "NO-REP", "BFS/NO-REP"},
	}
	run := func(strict bool) (workloadAndrew [5]time.Duration, total time.Duration, err error) {
		cfg := benchConfig(pbft.ModeMAC)
		cfg.StateSize = bfs.MinRegionSize(8192 * scale)
		c := pbft.NewLocalCluster(4, cfg, bfs.Factory, nil)
		c.Start()
		defer c.Stop()
		cl := c.NewClient()
		cl.MaxRetries = 20
		fc := bfs.NewClient(cl)
		fc.Strict = strict
		at, err := workload.RunAndrew(fc, scale)
		return at.Phase, at.Total, err
	}
	bftPhases, bftTotal, err1 := run(false)
	strictPhases, strictTotal, err2 := run(true)

	// NO-REP: the same file system behind the unreplicated server.
	var basePhases [5]time.Duration
	var baseTotal time.Duration
	var err3 error
	{
		net := simnet.New(simnet.WithSeed(8))
		srv := baseline.NewServer(net, bfs.MinRegionSize(8192*scale), 4096, bfs.Factory)
		srv.Start()
		cl := baseline.NewClient(message.ClientIDBase, net)
		fc := bfs.NewClient(cl)
		var at workload.AndrewTimes
		at, err3 = workload.RunAndrew(fc, scale)
		basePhases, baseTotal = at.Phase, at.Total
		cl.Close()
		srv.Stop()
		net.Close()
	}
	if err1 != nil || err2 != nil || err3 != nil {
		t.Note("errors: bfs=%v strict=%v norep=%v", err1, err2, err3)
	}
	for i := 0; i < 5; i++ {
		t.Add(workload.PhaseNames[i], ms(bftPhases[i]), ms(strictPhases[i]), ms(basePhases[i]),
			ratio(bftPhases[i], basePhases[i]))
	}
	t.Add("total", ms(bftTotal), ms(strictTotal), ms(baseTotal), ratio(bftTotal, baseTotal))
	t.Note("paper shape: BFS within a small factor of the unreplicated service; read-only-heavy phases (stat/read) benefit most from the optimization; strict mode is slower")
	return []*Table{t}
}

// E9Recovery measures proactive recovery: throughput with and without the
// watchdog, and the recovery durations themselves.
func E9Recovery(scale int) []*Table {
	t := &Table{
		ID:     "E9",
		Title:  "proactive recovery (BFT-PR)",
		Header: []string{"configuration", "ops/s", "recoveries started", "completed", "max recovery (ms)"},
	}
	run := func(watchdog time.Duration) (float64, uint64, uint64, time.Duration) {
		cfg := benchConfig(pbft.ModeMAC)
		cfg.CheckpointInterval = 16
		cfg.LogWindow = 32
		cfg.WatchdogInterval = watchdog
		if watchdog > 0 {
			cfg.KeyRefreshInterval = watchdog / 2
		}
		c := pbft.NewLocalCluster(4, cfg, kvservice.Factory, nil)
		c.Start()
		defer c.Stop()
		// Run long enough for every replica's watchdog to fire at least
		// once (the recovery schedule is staggered across the group).
		duration := 2 * time.Second * time.Duration(scale)
		if watchdog > 0 && duration < 4*watchdog {
			duration = 4 * watchdog // let the last staggered recovery finish
		}
		deadline := time.Now().Add(duration)
		st := workload.RunClosed(func() workload.Invoker {
			cl := c.NewClient()
			cl.MaxRetries = 30
			return cl
		}, 4, 1<<30, func(i int) ([]byte, bool) {
			if time.Now().After(deadline) {
				return nil, false // nil op returns immediately server-side
			}
			return kvservice.Incr(), false
		})
		_ = st
		var recs, done uint64
		var maxRec time.Duration
		for i := 0; i < 4; i++ {
			m := c.Replica(i).Metrics()
			recs += m.Recoveries
			done += m.RecoveriesCompleted
			if m.LastRecoveryTime > maxRec {
				maxRec = m.LastRecoveryTime
			}
		}
		return st.Throughput(), recs, done, maxRec
	}
	tp0, _, _, _ := run(0)
	t.Add("no recovery", fmt.Sprintf("%.0f", tp0), "0", "0", "-")
	for _, wd := range []time.Duration{1200 * time.Millisecond, 600 * time.Millisecond} {
		tp, recs, done, maxRec := run(wd)
		t.Add(fmt.Sprintf("watchdog %v", wd), fmt.Sprintf("%.0f", tp),
			fmt.Sprintf("%d", recs), fmt.Sprintf("%d", done), ms(maxRec))
	}
	t.Note("paper shape: frequent recovery costs some throughput but the service stays available; recoveries are staggered so at most f replicas recover at once")
	return []*Table{t}
}

// E10Model compares the Chapter 7 analytic model against measurement.
func E10Model(scale int) []*Table {
	iters := 20 * scale
	t := &Table{
		ID:     "E10",
		Title:  "analytic model vs measured latency (ms)",
		Header: []string{"op", "mode", "predicted", "measured", "pred/meas"},
	}
	p := perfmodel.Calibrate(4, simnet.LinkConfig{})

	c := newKVCluster(4, benchConfig(pbft.ModeMAC))
	cl := c.NewClient()
	type probe struct {
		name string
		op   []byte
		ro   bool
		pred time.Duration
	}
	probes := []probe{
		{"0/0 rw", kvservice.Noop(), false, p.LatencyReadWrite(1, 8, false, true)},
		{"4/0 rw", kvservice.WriteBlob(make([]byte, 4096)), false, p.LatencyReadWrite(4097, 8, false, true)},
		{"0/4 ro", kvservice.ReadBlob(4096), true, p.LatencyReadOnly(5, 4096, false)},
	}
	for _, pr := range probes {
		ro := pr.ro
		st := workload.MeasureLatency(cl, iters, func(int) ([]byte, bool) { return pr.op, ro })
		t.Add(pr.name, "BFT", ms(pr.pred), ms(st.Mean()), ratio(pr.pred, st.Mean()))
	}
	c.Stop()

	cpk := newKVCluster(4, benchConfig(pbft.ModePK))
	clpk := cpk.NewClient()
	st := workload.MeasureLatency(clpk, iters/2+1, func(int) ([]byte, bool) { return kvservice.Noop(), false })
	pred := p.LatencyReadWrite(1, 8, true, true)
	t.Add("0/0 rw", "BFT-PK", ms(pred), ms(st.Mean()), ratio(pred, st.Mean()))
	cpk.Stop()

	t.Note("calibrated: digest %v + %v/B, MAC %v, sig %v/%v, comm %v + %v/B",
		p.DigestFixed, p.DigestPerByte, p.MACOp, p.SigGen, p.SigVerify, p.CommFixed, p.CommPerByte)
	t.Note("paper shape: the model tracks measurements within a small factor and predicts the BFT-PK gap")
	return []*Table{t}
}

// E11AuthCrossover measures authenticator generation (n-1 MACs) against one
// signature as the group grows — the §3.2.1 claim that MACs win until n is
// in the hundreds.
func E11AuthCrossover(scale int) []*Table {
	t := &Table{
		ID:     "E11",
		Title:  "authenticator vs signature generation cost",
		Header: []string{"n", "authenticator (us)", "signature (us)", "MACs win"},
	}
	iters := 200 * scale
	payload := make([]byte, 96)
	kp := crypto.GenerateKeyPair([]byte("e11"))

	sigTime := func() time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			kp.Sign(payload)
		}
		return time.Since(start) / time.Duration(iters)
	}()

	for _, n := range []int{4, 16, 64, 256, 1024} {
		ks := crypto.NewKeyStore(0)
		for p := 1; p < n; p++ {
			ks.InstallInitial(uint32(p))
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			ks.MakeAuthenticator(n, payload)
		}
		authTime := time.Since(start) / time.Duration(iters)
		t.Add(fmt.Sprintf("%d", n), us(authTime), us(sigTime),
			fmt.Sprintf("%v", authTime < sigTime))
	}
	t.Note("paper claim: BFT outperforms BFT-PK up to ~280 replicas on 1999 hardware; the crossover is where (n-1) MACs cost one signature")
	return []*Table{t}
}
