// Command bftbench regenerates the tables and figures of the paper's
// evaluation (Chapter 8). Run one experiment or all of them:
//
//	bftbench -list
//	bftbench -exp E1 -scale 2
//	bftbench -exp all
//
// Scale multiplies iteration counts: 1 is a quick pass, 5+ gives smoother
// numbers. See EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (E1..E14) or 'all'")
		scale   = flag.Int("scale", 1, "work multiplier (>=1)")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.String("json", "", "write the machine-readable report of a JSON-capable experiment (E12, E13, E14) to this path")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, s := range experiments.All() {
			fmt.Printf("  %-4s %-55s [%s]\n", s.ID, s.What, s.Paper)
		}
		return
	}
	if *scale < 1 {
		*scale = 1
	}

	var specs []experiments.Spec
	if strings.EqualFold(*exp, "all") {
		specs = experiments.All()
	} else {
		s, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		specs = []experiments.Spec{s}
	}

	// The perf-trajectory experiments double as recorders: with -json they
	// print their table AND persist a machine-readable report.
	reporters := map[string]func(scale int) (*experiments.Table, interface{}){
		"E12": func(scale int) (*experiments.Table, interface{}) {
			t, rep := experiments.E12BatchingReport(scale)
			return t, rep
		},
		"E13": func(scale int) (*experiments.Table, interface{}) {
			t, rep := experiments.E13ShardingReport(scale)
			return t, rep
		},
		"E14": func(scale int) (*experiments.Table, interface{}) {
			t, rep := experiments.E14WALReport(scale)
			return t, rep
		},
	}

	for _, s := range specs {
		fmt.Printf("--- %s: %s (reproduces %s) ---\n", s.ID, s.What, s.Paper)
		start := time.Now()
		if reporter, ok := reporters[strings.ToUpper(s.ID)]; ok && *jsonOut != "" {
			t, rep := reporter(*scale)
			fmt.Println(t.String())
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "marshal report: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		} else {
			for _, t := range s.Run(*scale) {
				fmt.Println(t.String())
			}
		}
		fmt.Printf("(%s took %v)\n\n", s.ID, time.Since(start).Round(time.Millisecond))
	}
}
