// Command bftsim runs a scripted demonstration of the BFT library through
// its public per-node API: a replicated counter service survives a
// Byzantine replica, a primary failure (view change), a network partition
// (state transfer), and a proactive recovery, narrating each step. With
// -durable every replica keeps a write-ahead log and the script also
// kill -9s a replica mid-stream and restarts it from its log.
//
//	bftsim -n 4 -mode mac
//	bftsim -durable -dir /tmp/bftsim-wal
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/bft"
	"repro/bft/kv"
)

func main() {
	var (
		n       = flag.Int("n", 4, "number of replicas (3f+1)")
		mode    = flag.String("mode", "mac", "authentication: mac (BFT) or pk (BFT-PK)")
		seed    = flag.Int64("seed", -1, "simulation seed (-1: derive from the clock)")
		durable = flag.Bool("durable", false, "write-ahead log every replica and demonstrate kill -9 + restart")
		dir     = flag.String("dir", "", "WAL root directory for -durable (default: a fresh temp dir)")
	)
	flag.Parse()

	m := bft.BFT
	if *mode == "pk" {
		m = bft.BFTPK
	}
	if *seed < 0 {
		*seed = time.Now().UnixNano() % 1000
	}
	fmt.Printf("seed %d (rerun with -seed %d to reproduce)\n", *seed, *seed)
	opts := bft.Options{
		Replicas:           *n,
		Mode:               m,
		CheckpointInterval: 8,
		LogWindow:          16,
		ViewChangeTimeout:  300 * time.Millisecond,
		StateSize:          kv.MinStateSize,
		MaxRetries:         30,
		Seed:               *seed,
	}
	if *durable {
		opts.Durable = true
		opts.Dir = *dir
		if opts.Dir == "" {
			d, err := os.MkdirTemp("", "bftsim-wal-*")
			if err != nil {
				fmt.Fprintln(os.Stderr, "FATAL:", err)
				os.Exit(1)
			}
			defer os.RemoveAll(d)
			opts.Dir = d
		}
		fmt.Printf("durable: write-ahead logs under %s\n", opts.Dir)
	}
	cluster := bft.NewCluster(opts, kv.Factory,
		bft.WithBehavior(*n-1, bft.WrongResult)) // one liar from the start
	cluster.Start()
	defer cluster.Stop()

	client := cluster.NewClient()
	ctx := context.Background()

	step := func(format string, args ...interface{}) {
		fmt.Printf("\n==> "+format+"\n", args...)
	}
	incr := func(label string) {
		res, err := client.Invoke(ctx, kv.Incr())
		if err != nil {
			fmt.Fprintf(os.Stderr, "FATAL: %s: %v\n", label, err)
			os.Exit(1)
		}
		fmt.Printf("    counter = %d (%s)\n", kv.DecodeU64(res), label)
	}

	step("cluster of %d replicas (%s), tolerating f=%d faults; replica %d lies in every reply",
		*n, m, (*n-1)/3, *n-1)
	for i := 0; i < 3; i++ {
		incr("normal case")
	}

	step("isolating the primary (replica 0) — backups will time out and elect a new one")
	if err := cluster.Isolate(0); err != nil {
		fmt.Fprintln(os.Stderr, "FATAL:", err)
		os.Exit(1)
	}
	t0 := time.Now()
	incr("after view change")
	fmt.Printf("    failover took %v; replica 1 now in view %d\n",
		time.Since(t0).Round(time.Millisecond), cluster.Replica(1).View())
	incr("new view, normal case")

	step("healing the partition — the old primary rejoins and catches up")
	if err := cluster.Heal(); err != nil {
		fmt.Fprintln(os.Stderr, "FATAL:", err)
		os.Exit(1)
	}
	for i := 0; i < 8; i++ {
		incr("while replica 0 catches up")
	}
	deadline := time.Now().Add(10 * time.Second)
	for cluster.Replica(0).LastExecuted() < cluster.Replica(1).LastExecuted() {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("    replica 0 executed through %d (group at %d)\n",
		cluster.Replica(0).LastExecuted(), cluster.Replica(1).LastExecuted())

	step("proactively recovering replica 2 (BFT-PR, §4.3)")
	cluster.Recover(2)
	for cluster.Replica(2).Recovering() {
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("    recovery completed in %v\n", cluster.Replica(2).Metrics().LastRecoveryTime.Round(time.Millisecond))
	incr("after recovery")

	if *durable {
		step("kill -9 replica 0 mid-stream — whatever its WAL had not fsynced dies with it")
		cluster.Kill(0)
		for i := 0; i < 4; i++ {
			incr("while replica 0 is down")
		}

		step("restarting replica 0 from its write-ahead log")
		t0 = time.Now()
		r := cluster.Restart(0)
		fmt.Printf("    replayed its log to seq %d in %v\n",
			r.LastExecuted(), r.Metrics().ReplayTime.Round(time.Microsecond))
		deadline = time.Now().Add(10 * time.Second)
		for r.LastExecuted() < cluster.Replica(1).LastExecuted() {
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		fmt.Printf("    caught up to seq %d in %v\n",
			r.LastExecuted(), time.Since(t0).Round(time.Millisecond))
		incr("after restart")
	}

	step("final tally across replicas")
	for i := 0; i < *n; i++ {
		r := cluster.Replica(i)
		mm := r.Metrics()
		fmt.Printf("    replica %d: view=%d lastExec=%d stableCkpts=%d viewChanges=%d recoveries=%d\n",
			i, r.View(), r.LastExecuted(), mm.StableCheckpoints, mm.ViewChanges, mm.Recoveries)
	}
	fmt.Println("\nall steps completed: the service stayed correct throughout.")
}
