// Command bftsim runs a scripted demonstration of the BFT library through
// its public per-node API: a replicated counter service survives a
// Byzantine replica, a primary failure (view change), a network partition
// (state transfer), and a proactive recovery, narrating each step.
//
//	bftsim -n 4 -mode mac
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/bft"
	"repro/bft/kv"
)

func main() {
	var (
		n    = flag.Int("n", 4, "number of replicas (3f+1)")
		mode = flag.String("mode", "mac", "authentication: mac (BFT) or pk (BFT-PK)")
		seed = flag.Int64("seed", -1, "simulation seed (-1: derive from the clock)")
	)
	flag.Parse()

	m := bft.BFT
	if *mode == "pk" {
		m = bft.BFTPK
	}
	if *seed < 0 {
		*seed = time.Now().UnixNano() % 1000
	}
	fmt.Printf("seed %d (rerun with -seed %d to reproduce)\n", *seed, *seed)
	cluster := bft.NewCluster(bft.Options{
		Replicas:           *n,
		Mode:               m,
		CheckpointInterval: 8,
		LogWindow:          16,
		ViewChangeTimeout:  300 * time.Millisecond,
		StateSize:          kv.MinStateSize,
		MaxRetries:         30,
		Seed:               *seed,
	}, kv.Factory,
		bft.WithBehavior(*n-1, bft.WrongResult)) // one liar from the start
	cluster.Start()
	defer cluster.Stop()

	client := cluster.NewClient()
	ctx := context.Background()

	step := func(format string, args ...interface{}) {
		fmt.Printf("\n==> "+format+"\n", args...)
	}
	incr := func(label string) {
		res, err := client.Invoke(ctx, kv.Incr())
		if err != nil {
			fmt.Fprintf(os.Stderr, "FATAL: %s: %v\n", label, err)
			os.Exit(1)
		}
		fmt.Printf("    counter = %d (%s)\n", kv.DecodeU64(res), label)
	}

	step("cluster of %d replicas (%s), tolerating f=%d faults; replica %d lies in every reply",
		*n, m, (*n-1)/3, *n-1)
	for i := 0; i < 3; i++ {
		incr("normal case")
	}

	step("isolating the primary (replica 0) — backups will time out and elect a new one")
	if err := cluster.Isolate(0); err != nil {
		fmt.Fprintln(os.Stderr, "FATAL:", err)
		os.Exit(1)
	}
	t0 := time.Now()
	incr("after view change")
	fmt.Printf("    failover took %v; replica 1 now in view %d\n",
		time.Since(t0).Round(time.Millisecond), cluster.Replica(1).View())
	incr("new view, normal case")

	step("healing the partition — the old primary rejoins and catches up")
	if err := cluster.Heal(); err != nil {
		fmt.Fprintln(os.Stderr, "FATAL:", err)
		os.Exit(1)
	}
	for i := 0; i < 8; i++ {
		incr("while replica 0 catches up")
	}
	deadline := time.Now().Add(10 * time.Second)
	for cluster.Replica(0).LastExecuted() < cluster.Replica(1).LastExecuted() {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("    replica 0 executed through %d (group at %d)\n",
		cluster.Replica(0).LastExecuted(), cluster.Replica(1).LastExecuted())

	step("proactively recovering replica 2 (BFT-PR, §4.3)")
	cluster.Recover(2)
	for cluster.Replica(2).Recovering() {
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("    recovery completed in %v\n", cluster.Replica(2).Metrics().LastRecoveryTime.Round(time.Millisecond))
	incr("after recovery")

	step("final tally across replicas")
	for i := 0; i < *n; i++ {
		r := cluster.Replica(i)
		mm := r.Metrics()
		fmt.Printf("    replica %d: view=%d lastExec=%d stableCkpts=%d viewChanges=%d recoveries=%d\n",
			i, r.View(), r.LastExecuted(), mm.StableCheckpoints, mm.ViewChanges, mm.Recoveries)
	}
	fmt.Println("\nall steps completed: the service stayed correct throughout.")
}
