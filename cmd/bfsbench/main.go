// Command bfsbench runs the Andrew-style file-system benchmark (§8.6)
// against BFS on a BFT cluster, BFS-strict (read-only optimization off), or
// the unreplicated NO-REP baseline.
//
//	bfsbench -target bfs -scale 2
//	bfsbench -target norep
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/bfs"
	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/pbft"
	"repro/internal/simnet"
	"repro/internal/workload"
)

func main() {
	var (
		target = flag.String("target", "bfs", "bfs | strict | norep")
		scale  = flag.Int("scale", 1, "benchmark scale (>=1)")
		nRep   = flag.Int("n", 4, "replicas for bfs/strict")
	)
	flag.Parse()
	_ = kvservice.MinStateSize

	var fc *bfs.Client
	var cleanup func()

	switch *target {
	case "bfs", "strict":
		cfg := pbft.Config{
			Mode:               pbft.ModeMAC,
			Opt:                pbft.DefaultOptions(),
			CheckpointInterval: 64,
			LogWindow:          128,
			ViewChangeTimeout:  2 * time.Second,
			StateSize:          bfs.MinRegionSize(8192 * *scale),
			Seed:               1,
		}
		cluster := pbft.NewLocalCluster(*nRep, cfg, bfs.Factory, nil)
		cluster.Start()
		client := cluster.NewClient()
		client.MaxRetries = 20
		fc = bfs.NewClient(client)
		fc.Strict = *target == "strict"
		cleanup = cluster.Stop
	case "norep":
		net := simnet.New(simnet.WithSeed(1))
		srv := baseline.NewServer(net, bfs.MinRegionSize(8192**scale), 4096, bfs.Factory)
		srv.Start()
		cl := baseline.NewClient(message.ClientIDBase, net)
		fc = bfs.NewClient(cl)
		cleanup = func() { cl.Close(); srv.Stop(); net.Close() }
	default:
		fmt.Fprintf(os.Stderr, "unknown target %q\n", *target)
		os.Exit(2)
	}
	defer cleanup()

	fmt.Printf("Andrew-style benchmark, target=%s scale=%d\n", *target, *scale)
	at, err := workload.RunAndrew(fc, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchmark failed: %v\n", err)
		os.Exit(1)
	}
	for i, name := range workload.PhaseNames {
		fmt.Printf("  phase %-8s %10.3f ms\n", name, float64(at.Phase[i].Microseconds())/1000)
	}
	fmt.Printf("  total         %10.3f ms\n", float64(at.Total.Microseconds())/1000)
}
