// Command bfsbench runs the Andrew-style file-system benchmark (§8.6)
// against BFS on a BFT cluster, BFS-strict (read-only optimization off), or
// the unreplicated NO-REP baseline.
//
//	bfsbench -target bfs -scale 2
//	bfsbench -target norep
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/bft"
	"repro/bft/fs"
	"repro/internal/baseline"
	"repro/internal/message"
	"repro/internal/simnet"
	"repro/internal/workload"
)

func main() {
	var (
		target = flag.String("target", "bfs", "bfs | strict | norep")
		scale  = flag.Int("scale", 1, "benchmark scale (>=1)")
		nRep   = flag.Int("n", 4, "replicas for bfs/strict")
	)
	flag.Parse()

	var fc *fs.Client
	var cleanup func()

	switch *target {
	case "bfs", "strict":
		cluster := bft.NewCluster(bft.Options{
			Replicas:           *nRep,
			CheckpointInterval: 64,
			LogWindow:          128,
			ViewChangeTimeout:  2 * time.Second,
			StateSize:          fs.MinRegionSize(8192 * *scale),
			MaxRetries:         20,
			Seed:               1,
		}, fs.Factory)
		cluster.Start()
		fc = fs.NewClient(cluster.NewClient())
		fc.Strict = *target == "strict"
		cleanup = cluster.Stop
	case "norep":
		net := simnet.New(simnet.WithSeed(1))
		srv := baseline.NewServer(net, fs.MinRegionSize(8192**scale), 4096, fs.Factory)
		srv.Start()
		cl := baseline.NewClient(message.ClientIDBase, net)
		fc = fs.NewClient(cl)
		cleanup = func() { cl.Close(); srv.Stop(); net.Close() }
	default:
		fmt.Fprintf(os.Stderr, "unknown target %q\n", *target)
		os.Exit(2)
	}
	defer cleanup()

	fmt.Printf("Andrew-style benchmark, target=%s scale=%d\n", *target, *scale)
	at, err := workload.RunAndrew(fc, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchmark failed: %v\n", err)
		os.Exit(1)
	}
	for i, name := range workload.PhaseNames {
		fmt.Printf("  phase %-8s %10.3f ms\n", name, float64(at.Phase[i].Microseconds())/1000)
	}
	fmt.Printf("  total         %10.3f ms\n", float64(at.Total.Microseconds())/1000)
}
