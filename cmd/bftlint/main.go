// Command bftlint runs the repo's invariant analyzers (internal/lint).
//
// It speaks two protocols:
//
//   - As a vet tool (go vet -vettool=$(which bftlint) ./...): the go
//     command invokes it once per compilation unit with a *.cfg file (and
//     probes it with -V=full for build caching); this mode delegates to
//     the x/tools unitchecker, which handles fact serialization between
//     units.
//   - Standalone (go run ./cmd/bftlint [packages]): loads the named
//     packages (default ./...) through the internal driver and prints
//     findings, exiting 1 if there are any.
package main

import (
	"fmt"
	"os"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
	"repro/internal/lint/driver"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || a == "-V=full" || a == "-flags" {
			unitchecker.Main(lint.Analyzers...) // does not return
		}
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bftlint:", err)
		os.Exit(2)
	}
	set, err := driver.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bftlint:", err)
		os.Exit(2)
	}
	diags, err := set.Run(lint.Analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bftlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s\n", d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bftlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
