package repro

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md's experiment index). The experiment drivers in
// internal/experiments print the regenerated tables (visible with -v); the
// per-operation micro benchmarks report conventional ns/op so `go test
// -bench . -benchmem` gives comparable numbers run to run.
//
// Run everything:
//
//	go test -bench=. -benchmem -timeout 3h
//
// or a single table:
//
//	go test -bench=BenchmarkE1 -v

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bfs"
	"repro/internal/experiments"
	"repro/internal/kvservice"
	"repro/internal/pbft"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// runExperiment executes an experiment driver once per benchmark iteration
// and logs the regenerated tables on the first pass.
func runExperiment(b *testing.B, run func(scale int) []*experiments.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables := run(1)
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

func BenchmarkE1Latency(b *testing.B)       { runExperiment(b, experiments.E1Latency) }
func BenchmarkE2Throughput(b *testing.B)    { runExperiment(b, experiments.E2Throughput) }
func BenchmarkE3Ablation(b *testing.B)      { runExperiment(b, experiments.E3Ablation) }
func BenchmarkE4Replicas(b *testing.B)      { runExperiment(b, experiments.E4Replicas) }
func BenchmarkE5Checkpoint(b *testing.B)    { runExperiment(b, experiments.E5Checkpoint) }
func BenchmarkE6StateTransfer(b *testing.B) { runExperiment(b, experiments.E6StateTransfer) }
func BenchmarkE7ViewChange(b *testing.B)    { runExperiment(b, experiments.E7ViewChange) }
func BenchmarkE8BFS(b *testing.B)           { runExperiment(b, experiments.E8BFS) }
func BenchmarkE9Recovery(b *testing.B)      { runExperiment(b, experiments.E9Recovery) }
func BenchmarkE10Model(b *testing.B)        { runExperiment(b, experiments.E10Model) }
func BenchmarkE11AuthCrossover(b *testing.B) {
	runExperiment(b, experiments.E11AuthCrossover)
}
func BenchmarkE12Batching(b *testing.B) { runExperiment(b, experiments.E12Batching) }

// ---------------------------------------------------------------------------
// Conventional per-operation micro benchmarks (ns/op comparable across
// runs). These are the operations behind Figures 8-2..8-9.
// ---------------------------------------------------------------------------

func benchCluster(b *testing.B, mode pbft.Mode, n int) (*pbft.Cluster, *pbft.Client) {
	return benchClusterOpt(b, mode, n, nil)
}

func benchClusterOpt(b *testing.B, mode pbft.Mode, n int,
	mut func(*pbft.Config)) (*pbft.Cluster, *pbft.Client) {
	b.Helper()
	cfg := pbft.Config{
		Mode:               mode,
		Opt:                pbft.DefaultOptions(),
		CheckpointInterval: 256,
		LogWindow:          512,
		ViewChangeTimeout:  5 * time.Second,
		StatusInterval:     200 * time.Millisecond,
		StateSize:          kvservice.MinStateSize + 128*1024,
		Seed:               1,
	}
	if mut != nil {
		mut(&cfg)
	}
	c := pbft.NewLocalCluster(n, cfg, kvservice.Factory, nil)
	c.Start()
	b.Cleanup(c.Stop)
	cl := c.NewClient()
	cl.RetryTimeout = time.Second
	return c, cl
}

func benchInvoke(b *testing.B, cl *pbft.Client, op []byte, ro bool) {
	b.Helper()
	if _, err := cl.Invoke(op, ro); err != nil { // warm up
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Invoke(op, ro); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOp00ReadWrite(b *testing.B) {
	_, cl := benchCluster(b, pbft.ModeMAC, 4)
	benchInvoke(b, cl, kvservice.Noop(), false)
}

func BenchmarkOp00ReadWritePK(b *testing.B) {
	_, cl := benchCluster(b, pbft.ModePK, 4)
	benchInvoke(b, cl, kvservice.Noop(), false)
}

func BenchmarkOp40ReadWrite(b *testing.B) {
	_, cl := benchCluster(b, pbft.ModeMAC, 4)
	b.SetBytes(4096)
	benchInvoke(b, cl, kvservice.WriteBlob(make([]byte, 4096)), false)
}

func BenchmarkOp04ReadOnly(b *testing.B) {
	_, cl := benchCluster(b, pbft.ModeMAC, 4)
	b.SetBytes(4096)
	benchInvoke(b, cl, kvservice.ReadBlob(4096), true)
}

func BenchmarkOp04ReadWrite(b *testing.B) {
	_, cl := benchCluster(b, pbft.ModeMAC, 4)
	b.SetBytes(4096)
	benchInvoke(b, cl, kvservice.ReadBlob(4096), false)
}

func BenchmarkOp00N7(b *testing.B) {
	_, cl := benchCluster(b, pbft.ModeMAC, 7)
	benchInvoke(b, cl, kvservice.Noop(), false)
}

func BenchmarkOp00N13(b *testing.B) {
	_, cl := benchCluster(b, pbft.ModeMAC, 13)
	benchInvoke(b, cl, kvservice.Noop(), false)
}

// BenchmarkThroughput00 measures saturated throughput with 10 closed-loop
// clients; ops/sec appears as the custom metric.
func BenchmarkThroughput00(b *testing.B) {
	c, _ := benchCluster(b, pbft.ModeMAC, 4)
	b.ResetTimer()
	var total float64
	for i := 0; i < b.N; i++ {
		st := workload.RunClosed(func() workload.Invoker {
			cl := c.NewClient()
			cl.RetryTimeout = time.Second
			return cl
		}, 10, 30, func(int) ([]byte, bool) { return kvservice.Noop(), false })
		total += st.Throughput()
	}
	b.ReportMetric(total/float64(b.N), "ops/s")
}

// BenchmarkThroughput00SerialIngress / BenchmarkThroughput00PipelinedIngress
// pin the ingress mode explicitly (BenchmarkThroughput00 uses the adaptive
// default): serial decodes and MAC-checks inline on each replica's event
// loop, pipelined fans that work across the ingress pool. Comparing the two
// ops/s metrics isolates the pipeline's contribution; see also
// BenchmarkIngressPipeline in internal/ingress for the ingress stage alone.
func BenchmarkThroughput00SerialIngress(b *testing.B) {
	benchThroughputIngress(b, false)
}

func BenchmarkThroughput00PipelinedIngress(b *testing.B) {
	benchThroughputIngress(b, true)
}

func benchThroughputIngress(b *testing.B, pipeline bool) {
	benchThroughputOpt(b, func(cfg *pbft.Config) { cfg.Opt.Pipeline = pipeline })
}

// BenchmarkThroughput00SerialEgress / BenchmarkThroughput00PipelinedEgress
// pin the egress mode the same way: serial seals every outbound message
// (marshal + O(n) MACs) inline on the event loop, pipelined fans that work
// across the egress pool. See also BenchmarkEgressPipeline in
// internal/egress for the egress stage alone.
func BenchmarkThroughput00SerialEgress(b *testing.B) {
	benchThroughputOpt(b, func(cfg *pbft.Config) { cfg.Opt.EgressPipeline = false })
}

func BenchmarkThroughput00PipelinedEgress(b *testing.B) {
	benchThroughputOpt(b, func(cfg *pbft.Config) { cfg.Opt.EgressPipeline = true })
}

// BenchmarkThroughput00InlineExec / BenchmarkThroughput00StagedExec pin the
// stage-3 executor the same way: inline runs Service.Execute, checkpoint
// digesting, and reply construction on the event loop; staged ships them to
// the ordered executor goroutine so agreement for batch n+1 overlaps
// execution of batch n. See also BenchmarkExecPipeline in internal/executor
// for the execution stage alone.
func BenchmarkThroughput00InlineExec(b *testing.B) {
	benchThroughputOpt(b, func(cfg *pbft.Config) { cfg.Opt.ExecPipeline = false })
}

func BenchmarkThroughput00StagedExec(b *testing.B) {
	benchThroughputOpt(b, func(cfg *pbft.Config) { cfg.Opt.ExecPipeline = true })
}

// BenchmarkThroughput00Batch1 / Batch16Fixed / BatchAdaptive pin the
// primary's proposal policy (§5.1.4): serial issues one pre-prepare per
// request, fixed drains up to BatchRequests per proposal, adaptive tracks
// the AIMD fill target (the default). Interleaved with the pipeline rows
// above, the ops/s metrics separate batching's contribution from the
// stage pipelines'.
func BenchmarkThroughput00Batch1(b *testing.B) {
	benchThroughputOpt(b, func(cfg *pbft.Config) { cfg.Opt.Batching = false })
}

func BenchmarkThroughput00Batch16Fixed(b *testing.B) {
	benchThroughputOpt(b, func(cfg *pbft.Config) { cfg.Opt.AdaptiveBatch = false })
}

func BenchmarkThroughput00BatchAdaptive(b *testing.B) {
	benchThroughputOpt(b, func(cfg *pbft.Config) {})
}

func benchThroughputOpt(b *testing.B, mut func(*pbft.Config)) {
	c, _ := benchClusterOpt(b, pbft.ModeMAC, 4, func(cfg *pbft.Config) {
		// Pin all three pipelines on before the variant's mutation (the
		// defaults adapt to core count): each serial-vs-pipelined pair then
		// differs by exactly one pipeline on any host.
		cfg.Opt.Pipeline = true
		cfg.Opt.EgressPipeline = true
		cfg.Opt.ExecPipeline = true
		mut(cfg)
	})
	b.ResetTimer()
	var total float64
	for i := 0; i < b.N; i++ {
		st := workload.RunClosed(func() workload.Invoker {
			cl := c.NewClient()
			cl.RetryTimeout = time.Second
			return cl
		}, 10, 30, func(int) ([]byte, bool) { return kvservice.Noop(), false })
		total += st.Throughput()
	}
	b.ReportMetric(total/float64(b.N), "ops/s")
}

// BenchmarkStateTransferWindow1 / BenchmarkStateTransferWindow8 measure one
// collected-log rejoin on a simnet with 1 ms links: the laggard's only way
// back is a hierarchical state transfer (§5.3.2). The serial ablation
// (window=1) pays roughly one round trip per differing partition; the
// windowed engine keeps 8 fetches in flight across distinct repliers, so
// the same transfer completes in measurably fewer round-trip cycles.
func BenchmarkStateTransferWindow1(b *testing.B) { benchStateTransfer(b, 1) }
func BenchmarkStateTransferWindow8(b *testing.B) { benchStateTransfer(b, 8) }

func benchStateTransfer(b *testing.B, window int) {
	var total time.Duration
	var retries uint64
	for i := 0; i < b.N; i++ {
		cfg := pbft.Config{
			Mode:               pbft.ModeMAC,
			Opt:                pbft.DefaultOptions(),
			CheckpointInterval: 8,
			LogWindow:          16,
			ViewChangeTimeout:  5 * time.Second,
			StatusInterval:     50 * time.Millisecond,
			StateSize:          kvservice.MinStateSize + 128*1024,
			Seed:               1,
		}
		cfg.Opt.FetchWindow = window
		net := simnet.New(simnet.WithSeed(int64(13+i)),
			simnet.WithDefaults(simnet.LinkConfig{Latency: time.Millisecond}))
		c := pbft.NewCluster(net, cfg, 4, kvservice.Factory, nil)
		c.Start()
		cl := c.NewClient()
		cl.RetryTimeout = time.Second
		cl.MaxRetries = 20

		c.Net.Isolate(3)
		blob := make([]byte, 2048)
		for j := 0; j < 40; j++ {
			blob[0] = byte(j)
			if _, err := cl.Invoke(kvservice.WriteBlob(blob), false); err != nil {
				b.Fatal(err)
			}
		}
		deadline := time.Now().Add(10 * time.Second)
		for c.Replica(0).LowWaterMark() < 32 {
			if time.Now().After(deadline) {
				b.Fatal("group never collected the laggard's window")
			}
			time.Sleep(2 * time.Millisecond)
		}
		target := c.Replica(0).LastExecuted()
		heal := time.Now()
		c.Net.Heal()
		for c.Replica(3).LastExecuted() < target {
			if time.Since(heal) > 30*time.Second {
				b.Fatal("laggard never caught up")
			}
			time.Sleep(2 * time.Millisecond)
		}
		total += time.Since(heal)
		retries += c.Replica(3).Metrics().FetchRetries
		c.Stop()
		net.Close()
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "ms/catchup")
	b.ReportMetric(float64(retries)/float64(b.N), "retries/catchup")
}

// BenchmarkBFSAndrew measures one Andrew-benchmark pass over replicated BFS.
func BenchmarkBFSAndrew(b *testing.B) {
	cfg := pbft.Config{
		Mode:               pbft.ModeMAC,
		Opt:                pbft.DefaultOptions(),
		CheckpointInterval: 256,
		LogWindow:          512,
		ViewChangeTimeout:  5 * time.Second,
		StateSize:          bfs.MinRegionSize(16384),
		Seed:               1,
	}
	c := pbft.NewLocalCluster(4, cfg, bfs.Factory, nil)
	c.Start()
	b.Cleanup(c.Stop)
	cl := c.NewClient()
	cl.RetryTimeout = time.Second
	fc := bfs.NewClient(cl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh directory per iteration keeps the namespace disjoint.
		sub, err := fc.Mkdir(bfs.RootIno, fmt.Sprintf("iter%d", i))
		if err != nil {
			b.Fatal(err)
		}
		_ = sub
		if _, err := workload.RunAndrewAt(fc, 1, fmt.Sprintf("iter%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}
