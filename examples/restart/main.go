// Crash-recovery example (internal/wal behind bft.Options): every replica
// appends protocol records to a write-ahead log through an async
// group-commit writer, so a kill -9 loses at most the un-fsynced tail.
// The walkthrough kills a replica mid-load, keeps serving on the
// survivors, restarts the victim from its on-disk log, and shows it
// replaying to its last durable point and catching the tail live — with
// the reply cache intact, so exactly-once survives the crash. All through
// the public bft surface.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/bft"
	"repro/bft/kv"
)

func main() {
	dir, err := os.MkdirTemp("", "bft-restart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cluster := bft.NewCluster(bft.Options{
		Replicas:           4,
		StateSize:          kv.MinStateSize,
		CheckpointInterval: 8,
		LogWindow:          16,
		MaxRetries:         30,
		Durable:            true, // WAL every replica under dir
		Dir:                dir,
	}, kv.Factory)
	cluster.Start()
	defer cluster.Stop()

	client := cluster.NewClient()
	ctx := context.Background()
	incr := func() uint64 {
		res, err := client.Invoke(ctx, kv.Incr())
		if err != nil {
			log.Fatal(err)
		}
		return kv.DecodeU64(res)
	}

	for i := 0; i < 10; i++ {
		incr()
	}
	fmt.Println("counter at 10; kill -9 replica 1 (its un-fsynced log tail dies with it)")
	cluster.Kill(1)

	// 3f+1 = 4 tolerates one crashed replica: the service keeps serving.
	for i := 0; i < 5; i++ {
		incr()
	}
	fmt.Println("counter at 15 with replica 1 down")

	fmt.Println("restarting replica 1 from its write-ahead log...")
	t0 := time.Now()
	r := cluster.Restart(1)
	fmt.Printf("replayed to seq %d in %v; catching the tail live\n",
		r.LastExecuted(), r.Metrics().ReplayTime.Round(time.Microsecond))

	target := cluster.Replica(0).LastExecuted()
	deadline := time.Now().Add(15 * time.Second)
	for r.LastExecuted() < target {
		if time.Now().After(deadline) {
			log.Fatalf("replica 1 stuck at %d, group at %d", r.LastExecuted(), target)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("replica 1 caught up to seq %d in %v\n",
		r.LastExecuted(), time.Since(t0).Round(time.Millisecond))

	// Exactly-once survived the crash: the counter continues from 15, no
	// increment lost, none applied twice.
	if got := incr(); got != 16 {
		log.Fatalf("counter reads %d after restart, want 16", got)
	}
	fmt.Println("counter reads 16 after restart: exactly-once intact")
}
