// View-change example: a silent Byzantine primary is detected by the
// backups' timers and replaced (§2.3.5, §3.2.4); the client never sees an
// incorrect result, only a latency blip. Fault injection goes through the
// public bft.Behavior surface.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/bft"
	"repro/bft/kv"
)

func main() {
	// Replica 0 is the primary of view 0 — and it never orders a request.
	cluster := bft.NewCluster(bft.Options{
		Replicas:          4,
		StateSize:         kv.MinStateSize,
		ViewChangeTimeout: 250 * time.Millisecond,
		MaxRetries:        30,
	}, kv.Factory, bft.WithBehavior(0, bft.SilentPrimary))
	cluster.Start()
	defer cluster.Stop()

	client := cluster.NewClient()
	ctx := context.Background()

	fmt.Println("replica 0 (primary of view 0) silently drops every request...")
	start := time.Now()
	res, err := client.Invoke(ctx, kv.Incr())
	if err != nil {
		log.Fatalf("invoke: %v", err)
	}
	fmt.Printf("first op completed anyway in %v: counter=%d\n",
		time.Since(start).Round(time.Millisecond), kv.DecodeU64(res))

	for i := 0; i < cluster.Replicas(); i++ {
		r := cluster.Replica(i)
		m := r.Metrics()
		fmt.Printf("replica %d: view=%d viewChanges=%d newViews=%d\n",
			i, r.View(), m.ViewChanges, m.NewViewsProcessed)
	}

	fmt.Println("subsequent operations run at normal speed under the new primary:")
	start = time.Now()
	for i := 0; i < 5; i++ {
		if _, err := client.Invoke(ctx, kv.Incr()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("5 ops in %v\n", time.Since(start).Round(time.Microsecond))
}
