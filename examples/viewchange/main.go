// View-change example: a silent Byzantine primary is detected by the
// backups' timers and replaced (§2.3.5, §3.2.4); the client never sees an
// incorrect result, only a latency blip.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/kvservice"
	"repro/internal/message"
	"repro/internal/pbft"
)

func main() {
	cfg := pbft.Config{
		Mode:              pbft.ModeMAC,
		Opt:               pbft.DefaultOptions(),
		StateSize:         kvservice.MinStateSize,
		ViewChangeTimeout: 250 * time.Millisecond,
	}
	// Replica 0 is the primary of view 0 — and it never orders a request.
	cluster := pbft.NewLocalCluster(4, cfg, kvservice.Factory,
		map[message.NodeID]pbft.Behavior{0: pbft.SilentPrimary})
	cluster.Start()
	defer cluster.Stop()

	client := cluster.NewClient()
	client.MaxRetries = 30

	fmt.Println("replica 0 (primary of view 0) silently drops every request...")
	start := time.Now()
	res, err := client.Invoke(kvservice.Incr(), false)
	if err != nil {
		log.Fatalf("invoke: %v", err)
	}
	fmt.Printf("first op completed anyway in %v: counter=%d\n",
		time.Since(start).Round(time.Millisecond), kvservice.DecodeU64(res))

	for i, r := range cluster.Replicas {
		m := r.Metrics()
		fmt.Printf("replica %d: view=%d viewChanges=%d newViews=%d\n",
			i, r.View(), m.ViewChanges, m.NewViewsProcessed)
	}

	fmt.Println("subsequent operations run at normal speed under the new primary:")
	start = time.Now()
	for i := 0; i < 5; i++ {
		if _, err := client.Invoke(kvservice.Incr(), false); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("5 ops in %v\n", time.Since(start).Round(time.Microsecond))
}
