// Quickstart: replicate a counter service over 4 replicas with the public
// bft API, invoke operations, and read back with the single-round-trip
// read-only optimization.
package main

import (
	"fmt"
	"log"

	"repro/bft"
	"repro/internal/kvservice"
)

func main() {
	// 4 replicas tolerate 1 Byzantine fault. Each replica runs its own
	// instance of the service, built by the factory over the
	// library-managed memory region.
	cluster := bft.NewCluster(bft.Options{Replicas: 4}, kvservice.Factory)
	cluster.Start()
	defer cluster.Stop()

	client := cluster.NewClient()

	// Read-write operations go through the three-phase protocol.
	for i := 0; i < 5; i++ {
		res, err := client.Invoke(kvservice.Incr(), false)
		if err != nil {
			log.Fatalf("invoke: %v", err)
		}
		fmt.Printf("incr -> %d\n", kvservice.DecodeU64(res))
	}

	// Read-only operations take a single round trip (§5.1.3).
	res, err := client.Invoke(kvservice.Get(), true)
	if err != nil {
		log.Fatalf("read-only invoke: %v", err)
	}
	fmt.Printf("read-only get -> %d\n", kvservice.DecodeU64(res))

	fmt.Printf("cluster: n=%d, tolerates f=%d Byzantine faults\n",
		cluster.Replicas(), cluster.FaultTolerance())
}
