// Quickstart: replicate a counter service over 4 replicas with the public
// bft API, invoke operations with a context, and read back with the
// single-round-trip read-only optimization — no internal packages, just
// repro/bft and the public demo service repro/bft/kv.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/bft"
	"repro/bft/kv"
)

func main() {
	// 4 replicas tolerate 1 Byzantine fault. Each replica runs its own
	// instance of the service, built by the factory over the
	// library-managed memory region.
	cluster := bft.NewCluster(bft.Options{Replicas: 4}, kv.Factory)
	cluster.Start()
	defer cluster.Stop()

	client := cluster.NewClient()
	ctx := context.Background()

	// Read-write operations go through the three-phase protocol.
	for i := 0; i < 5; i++ {
		res, err := client.Invoke(ctx, kv.Incr())
		if err != nil {
			log.Fatalf("invoke: %v", err)
		}
		fmt.Printf("incr -> %d\n", kv.DecodeU64(res))
	}

	// Read-only operations take a single round trip (§5.1.3).
	res, err := client.Invoke(ctx, kv.Get(), bft.ReadOnly)
	if err != nil {
		log.Fatalf("read-only invoke: %v", err)
	}
	fmt.Printf("read-only get -> %d\n", kv.DecodeU64(res))

	// A ClientPool fans concurrent load across distinct client principals
	// (the engine admits one in-flight operation per principal).
	pool := cluster.NewClientPool(4)
	futures := make([]*bft.Future, 4)
	for i := range futures {
		futures[i] = pool.InvokeAsync(ctx, kv.Incr())
	}
	for _, f := range futures {
		if _, err := f.Wait(ctx); err != nil {
			log.Fatalf("async invoke: %v", err)
		}
	}
	res, err = client.Invoke(ctx, kv.Get(), bft.ReadOnly)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 4 pooled incrs -> %d\n", kv.DecodeU64(res))

	fmt.Printf("cluster: n=%d, tolerates f=%d Byzantine faults\n",
		cluster.Replicas(), cluster.FaultTolerance())
}
