// Proactive-recovery example (BFT-PR, Chapter 4): an attacker corrupts a
// replica's state behind the library's back; recovery detects the damage
// with the partition-tree state check (§5.3.3), refetches the corrupt
// pages, refreshes session keys, and rejoins — all while the service keeps
// running, and all through the public bft surface.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/bft"
	"repro/bft/kv"
)

func main() {
	cluster := bft.NewCluster(bft.Options{
		Replicas:           4,
		StateSize:          kv.MinStateSize,
		CheckpointInterval: 8,
		LogWindow:          16,
		MaxRetries:         30,
	}, kv.Factory)
	cluster.Start()
	defer cluster.Stop()

	client := cluster.NewClient()
	ctx := context.Background()

	// Build up some state and a stable checkpoint.
	for i := 0; i < 12; i++ {
		if _, err := client.Invoke(ctx, kv.Incr()); err != nil {
			log.Fatal(err)
		}
	}
	for cluster.Replica(2).LowWaterMark() == 0 {
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Println("attacker flips bytes in replica 2's state (page 0)...")
	cluster.Replica(2).CorruptStatePage(0)

	fmt.Println("watchdog fires: replica 2 recovers proactively")
	cluster.Recover(2)
	for cluster.Replica(2).Recovering() {
		time.Sleep(25 * time.Millisecond)
	}
	m := cluster.Replica(2).Metrics()
	fmt.Printf("recovery done in %v: %d page(s) refetched, %d state transfer(s)\n",
		m.LastRecoveryTime.Round(time.Millisecond), m.PagesFetched, m.StateTransfers)

	// The service never stopped, and replica 2's state is clean again.
	res, err := client.Invoke(ctx, kv.Get(), bft.ReadOnly)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counter reads %d (correct) with replica 2 back in rotation\n",
		kv.DecodeU64(res))
	if d0, d2 := cluster.Replica(0).StateDigest(), cluster.Replica(2).StateDigest(); d0 == d2 {
		fmt.Println("replica 2's state digest matches the group again")
	} else {
		fmt.Println("replica 2 still catching up (state digests differ)")
	}
}
