// BFS example: a Byzantine-fault-tolerant file system (Chapter 6) — create
// a directory tree, write and read files, rename, and list, all through
// the replicated state machine via the public bft and bft/fs packages. One
// replica lies in every reply and is masked by the client's reply
// certificates.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/bft"
	"repro/bft/fs"
)

func main() {
	// Replica 3 corrupts every reply it sends; f=1 masks it.
	cluster := bft.NewCluster(bft.Options{
		Replicas:          4,
		StateSize:         fs.MinRegionSize(4096),
		ViewChangeTimeout: 500 * time.Millisecond,
	}, fs.Factory, bft.WithBehavior(3, bft.WrongResult))
	cluster.Start()
	defer cluster.Stop()

	fc := fs.NewClient(cluster.NewClient())

	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// Build /projects/bft and write a file into it.
	dir, err := fc.MkdirAll("/projects/bft")
	must(err)
	_, err = fc.WriteFile(dir, "README.md", []byte("# BFT\nByzantine fault tolerant file system\n"))
	must(err)
	_, err = fc.WriteFile(dir, "notes.txt", []byte("scratch"))
	must(err)

	// Rename within the directory.
	must(fc.Rename(dir, "notes.txt", dir, "notes.old"))

	// A symlink, because NFS has them.
	_, err = fc.Symlink(dir, "latest", "/projects/bft/README.md")
	must(err)

	// Walk and read back.
	attr, err := fc.WalkPath("/projects/bft/README.md")
	must(err)
	content, err := fc.ReadFile(attr.Ino)
	must(err)
	fmt.Printf("README.md (%d bytes, mtime %s):\n%s\n",
		attr.Size, time.Unix(0, int64(attr.Mtime)).Format(time.TimeOnly), content)

	ents, err := fc.Readdir(dir)
	must(err)
	fmt.Println("directory listing of /projects/bft:")
	for _, e := range ents {
		a, err := fc.GetAttr(e.Ino)
		must(err)
		kind := map[uint8]string{fs.TypeFile: "file", fs.TypeDir: "dir", fs.TypeSymlink: "link"}[a.Type]
		fmt.Printf("  %-12s %-4s %4d bytes\n", e.Name, kind, a.Size)
	}

	total, free, err := fc.StatFS()
	must(err)
	fmt.Printf("fs blocks: %d free of %d\n", free, total)
	fmt.Println("(replica 3 corrupted every reply; the certificates masked it)")
}
