// Sharded: scale writes past one primary's pipeline by running several
// independent PBFT groups behind a consistent-hash router. Single-key ops
// go straight to the owning group; multi-key writes commit atomically
// across groups with a two-phase protocol whose phases are ordinary
// ordered ops — no internal packages, just repro/bft/sharded and the
// keyed store in repro/bft/kv.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/bft/kv"
	"repro/bft/sharded"
)

func main() {
	// 3 groups × 4 replicas: each group tolerates 1 Byzantine fault and
	// runs its own primary, its own view changes, its own pipeline.
	cluster := sharded.New(sharded.Options{Shards: 3}, kv.KeyedFactory)
	cluster.Start()
	defer cluster.Stop()

	client := cluster.NewClient()
	ctx := context.Background()

	// Single-key writes route to the owning group via the consistent-hash
	// ring; every client computes the same owner with no coordination.
	keys := [][]byte{[]byte("alice"), []byte("bob"), []byte("carol")}
	for i, k := range keys {
		if err := client.Put(ctx, k, []byte(fmt.Sprintf("balance=%d", 100*(i+1)))); err != nil {
			log.Fatalf("put %s: %v", k, err)
		}
		fmt.Printf("put %-5s -> shard %d\n", k, cluster.Owner(k))
	}

	// Reads use the owning group's single-round-trip quorum path;
	// MultiGet fans across groups concurrently.
	vals, found, err := client.MultiGet(ctx, keys)
	if err != nil {
		log.Fatalf("multiget: %v", err)
	}
	for i, k := range keys {
		fmt.Printf("get %-5s -> %q (found=%v)\n", k, vals[i], found[i])
	}

	// A cross-shard transfer: both writes commit atomically or neither
	// does, even if a participating group changes primaries mid-protocol
	// or the coordinating client dies (a later client unwedges the keys
	// past the lock TTL through the transaction's home group).
	err = client.PutMulti(ctx, []kv.TxKV{
		{Key: []byte("alice"), Val: []byte("balance=50")},
		{Key: []byte("bob"), Val: []byte("balance=250")},
	})
	if err != nil {
		log.Fatalf("putmulti: %v", err)
	}
	vals, _, err = client.MultiGet(ctx, keys[:2])
	if err != nil {
		log.Fatalf("multiget: %v", err)
	}
	fmt.Printf("after transfer: alice=%q bob=%q\n", vals[0], vals[1])

	// One rollup plus per-shard breakdown.
	m := cluster.Metrics()
	fmt.Printf("cluster: %d shards, %d batches proposed in total\n",
		cluster.Shards(), m.Total.BatchesProposed)
}
