// Package repro is a from-scratch Go reproduction of "Practical Byzantine
// Fault Tolerance" (Castro & Liskov, OSDI '99; Castro's MIT thesis, 2001).
//
// The public library API lives in repro/bft; the protocol engine and every
// substrate (network simulator, crypto, checkpointing, state transfer, the
// BFS file service, baselines, the analytic performance model, and the
// benchmark harness) live under repro/internal. See README.md for a tour,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-versus-measured record. The benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation chapter.
package repro
