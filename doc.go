// Package repro is a from-scratch Go reproduction of "Practical Byzantine
// Fault Tolerance" (Castro & Liskov, OSDI '99; Castro's MIT thesis, 2001).
//
// The public library API lives in repro/bft: a per-node surface mirroring
// §6.2 of the thesis (bft.NewReplica / bft.NewClient over any network —
// simulated or real UDP), context-aware invocation with ClientPool fan-out,
// typed fault injection, and metrics. Two complete replicated services ship
// publicly: repro/bft/kv (counter/KV demo) and repro/bft/fs (the BFS file
// system of Chapter 6). The protocol engine and every substrate (network
// simulator, crypto, checkpointing, state transfer, baselines, the analytic
// performance model, and the benchmark harness) live under repro/internal.
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation chapter.
package repro
