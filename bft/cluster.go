package bft

import (
	"errors"
	"sync"
)

// ErrNotSimulated is returned by the fault-injection methods of a Cluster
// that runs over a real network: partitions and link profiles are a
// simulation instrument. (Kill real replicas with Replica.Stop instead.)
var ErrNotSimulated = errors.New("bft: cluster network is not simulated")

// ClusterOption configures NewCluster beyond Options.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	net       Network
	behaviors map[int]Behavior
}

// WithNetwork runs the cluster over the given network instead of a fresh
// SimNetwork — e.g. a UDPNetwork for a real-sockets cluster in one
// process. The caller keeps ownership: Cluster.Stop does not close it.
func WithNetwork(net Network) ClusterOption {
	return func(c *clusterConfig) { c.net = net }
}

// WithBehavior gives replica i a fault-injection personality.
func WithBehavior(i int, b Behavior) ClusterOption {
	return func(c *clusterConfig) {
		if c.behaviors == nil {
			c.behaviors = make(map[int]Behavior)
		}
		c.behaviors[i] = b
	}
}

// Cluster is a convenience over the per-node API: it constructs
// opts.Replicas replicas on one network (a fresh simulated network unless
// WithNetwork says otherwise) and hands out clients and pools with
// sequential principal ids. Everything it does can be done with
// NewReplica/NewClient directly.
type Cluster struct {
	opts      Options
	svc       ServiceFactory
	behaviors map[int]Behavior
	net       Network
	sim       *SimNet // non-nil when the cluster runs over a simulated network
	ownsNet   bool    // the cluster created sim and must close it
	replicas  []*Replica

	mu         sync.Mutex
	nextClient int
	closers    []func()
	stopped    bool
}

// NewCluster builds an in-process cluster of opts.Replicas replicas, each
// running its own instance of the service.
func NewCluster(opts Options, svc ServiceFactory, copts ...ClusterOption) *Cluster {
	var cc clusterConfig
	for _, o := range copts {
		o(&cc)
	}
	c := &Cluster{opts: opts, svc: svc, behaviors: cc.behaviors, net: cc.net}
	if c.net == nil {
		c.sim = SimNetwork(SimSeed(opts.Seed + 7))
		c.net = c.sim
		c.ownsNet = true
	} else if s, ok := cc.net.(*SimNet); ok {
		// A caller-supplied simulated network (e.g. custom link profiles
		// via SimLinks) still gets the typed fault-injection surface; the
		// caller keeps ownership, so Stop leaves it open.
		c.sim = s
	}
	for i := 0; i < opts.replicas(); i++ {
		c.replicas = append(c.replicas, NewReplica(i, c.replicaOptions(i), svc, c.net))
	}
	return c
}

// replicaOptions derives replica i's per-node options from the cluster's.
func (c *Cluster) replicaOptions(i int) Options {
	ropts := c.opts
	// Options.Behavior is the per-node field for NewReplica; in a
	// cluster, personalities come from WithBehavior per index —
	// inheriting it here would silently make every replica faulty.
	ropts.Behavior = Correct
	if b, ok := c.behaviors[i]; ok {
		ropts.Behavior = b
	}
	return ropts
}

// Start launches every replica.
func (c *Cluster) Start() {
	for _, r := range c.replicas {
		r.Start()
	}
}

// Stop stops replicas and every client/pool the cluster handed out, and
// shuts the network down if the cluster created it.
func (c *Cluster) Stop() {
	for _, r := range c.replicas {
		r.Stop()
	}
	c.mu.Lock()
	closers := c.closers
	c.closers = nil
	c.stopped = true
	c.mu.Unlock()
	for _, f := range closers {
		f()
	}
	if c.ownsNet {
		c.sim.Close()
	}
}

// NewClient attaches a fresh client principal to the cluster. It panics
// after Stop — a stopped cluster's network is gone, so the client could
// only ever time out. (Construction stays under the lock so a racing Stop
// either sees the client in closers or happens-before its creation.)
func (c *Cluster) NewClient() *Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		panic("bft: NewClient on a stopped cluster")
	}
	k := c.nextClient
	c.nextClient++
	cl := NewClient(k, c.opts, c.net)
	c.closers = append(c.closers, cl.Close)
	return cl
}

// NewClientPool attaches a pool of k fresh client principals. Like
// NewClient, it panics after Stop.
func (c *Cluster) NewClientPool(k int) *ClientPool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		panic("bft: NewClientPool on a stopped cluster")
	}
	first := c.nextClient
	c.nextClient += k
	p := NewClientPoolAt(first, k, c.opts, c.net)
	c.closers = append(c.closers, p.Close)
	return p
}

// Replica returns replica i's handle.
func (c *Cluster) Replica(i int) *Replica { return c.replicas[i] }

// Replicas returns the number of replicas n.
func (c *Cluster) Replicas() int { return len(c.replicas) }

// FaultTolerance returns f = (n-1)/3.
func (c *Cluster) FaultTolerance() int { return (len(c.replicas) - 1) / 3 }

// Recover triggers proactive recovery of replica i immediately.
func (c *Cluster) Recover(i int) { c.replicas[i].Recover() }

// Kill crashes replica i without flushing its write-ahead log (see
// Replica.Kill); the rest of the cluster keeps running.
func (c *Cluster) Kill(i int) { c.replicas[i].Kill() }

// Restart replaces a stopped or killed replica i with a fresh instance
// built from the same options. With Durable set the new instance replays
// its log from Dir before rejoining; the replica is started before
// Restart returns.
func (c *Cluster) Restart(i int) *Replica {
	r := NewReplica(i, c.replicaOptions(i), c.svc, c.net)
	c.replicas[i] = r
	r.Start()
	return r
}

// Partition splits the replicas into groups; replica-to-replica traffic
// crossing a group boundary is dropped until Heal. Clients keep reaching
// every replica. Returns ErrNotSimulated over a real network.
func (c *Cluster) Partition(groups ...[]int) error {
	if c.sim == nil {
		return ErrNotSimulated
	}
	c.sim.Partition(groups...)
	return nil
}

// Isolate severs all traffic to and from replica i (clients included).
// Returns ErrNotSimulated over a real network.
func (c *Cluster) Isolate(i int) error {
	if c.sim == nil {
		return ErrNotSimulated
	}
	c.sim.Isolate(i)
	return nil
}

// Heal removes every partition and isolation. Returns ErrNotSimulated
// over a real network.
func (c *Cluster) Heal() error {
	if c.sim == nil {
		return ErrNotSimulated
	}
	c.sim.Heal()
	return nil
}

// SetLinkProfile replaces the simulated network's default link model
// (latency, jitter, bandwidth, loss, duplication) at runtime. Returns
// ErrNotSimulated over a real network.
func (c *Cluster) SetLinkProfile(p LinkProfile) error {
	if c.sim == nil {
		return ErrNotSimulated
	}
	c.sim.SetLinkProfile(p)
	return nil
}
