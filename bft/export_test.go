package bft

import "repro/internal/pbft"

// EngineConfig exposes the Options lowering for regression tests: the
// public surface must not silently change what reaches the engine.
func EngineConfig(o Options) pbft.Config { return o.engineConfig() }
