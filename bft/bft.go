// Package bft is the public interface of the BFT library — the Go analogue
// of the C interface in §6.2 of Castro's thesis (Byz_init_replica,
// Byz_init_client, Byz_invoke, Byz_modify). It is a PER-NODE surface: each
// replica and each client is constructed independently against any network
// substrate, so one binary runs a whole cluster in simulation or a single
// node of a multi-process deployment over real UDP.
//
// Per-node construction (§6.2's Byz_init_replica / Byz_init_client):
//
//	net := bft.SimNetwork(bft.SimSeed(1))        // or bft.UDPNetwork(...)
//	r0 := bft.NewReplica(0, opts, svcFactory, net)
//	r0.Start()
//	defer r0.Stop()
//	...
//	client := bft.NewClient(0, opts, net)
//	res, err := client.Invoke(ctx, op)           // cancellable (Byz_invoke)
//	res, err = client.Invoke(ctx, op, bft.ReadOnly)
//
// Convenience all-in-one cluster (wraps the per-node API):
//
//	cluster := bft.NewCluster(bft.Options{Replicas: 4}, svcFactory)
//	cluster.Start()
//	defer cluster.Stop()
//	pool := cluster.NewClientPool(8)             // 8 distinct client principals
//	res, err := pool.Invoke(ctx, op)
//
// The engine admits one operation in flight per client principal (§2.3.2);
// ClientPool is how callers get concurrency — it fans invocations across k
// principals. Clusters built over SimNetwork expose typed fault injection
// (Partition, Isolate, Heal, SetLinkProfile) and every replica exposes a
// Metrics snapshot; there is no escape hatch into the engine.
//
// Services: the replicated application implements Service over a
// library-managed paged Region and must announce writes with Region.Modify
// (the thesis's Byz_modify) so checkpointing, state transfer, and proactive
// recovery work. Two complete services ship as public packages: bft/kv (a
// counter/KV demo service) and bft/fs (the BFS replicated file system of
// Chapter 6).
package bft

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/crypto"
	"repro/internal/message"
	"repro/internal/pbft"
	"repro/internal/statemachine"
)

// Service is the deterministic state machine the library replicates
// (Definition 2.4.1). See statemachine.Service for the contract.
type Service = statemachine.Service

// Region is the paged memory holding all service state.
type Region = statemachine.Region

// ServiceFactory builds one service instance bound to a replica's region.
type ServiceFactory = func(*Region) Service

// Mode selects the authentication flavor.
type Mode = pbft.Mode

// Authentication modes.
const (
	// BFT authenticates with MAC vectors (Chapter 3) — the fast, default
	// algorithm.
	BFT = pbft.ModeMAC
	// BFTPK signs every message (Chapter 2) — simpler, ~an order of
	// magnitude slower; kept for comparison.
	BFTPK = pbft.ModePK
)

// Metrics is the per-replica counter snapshot returned by Replica.Metrics:
// protocol events (batches, view changes, checkpoints, state transfers,
// recoveries) and engine-stage health (inbox/outbox drops, executor queue
// depth). It is a plain value — reading it never perturbs the replica.
type Metrics = pbft.Metrics

// SumMetrics folds any set of Metrics snapshots (replicas, groups, whole
// shards) into one rollup: event counters add, backlog gauges add,
// "last observed" durations and the adaptive batch target take the max,
// and BatchFillAvg is recomputed from the summed proposal tallies.
// Metrics.Merge is the in-place form.
func SumMetrics(snaps ...Metrics) Metrics { return pbft.SumMetrics(snaps...) }

// Digest is a SHA-256 state or message digest.
type Digest = crypto.Digest

// Behavior selects a fault-injection personality for a replica — the
// supported way to stand up misbehaving replicas in demos and tests.
type Behavior = pbft.Behavior

// Fault-injection behaviors.
const (
	// Correct follows the protocol (the zero value).
	Correct = pbft.Correct
	// Crashed ignores every message (fail-stop).
	Crashed = pbft.Crashed
	// SilentPrimary follows the protocol except that it never sends
	// pre-prepares while primary, forcing view changes.
	SilentPrimary = pbft.SilentPrimary
	// ConflictingPrimary assigns the same sequence number to different
	// batches for different backups (Byzantine primary; safety holds).
	ConflictingPrimary = pbft.ConflictingPrimary
	// CorruptDigest sends prepare/commit messages with corrupted digests.
	CorruptDigest = pbft.CorruptDigest
	// WrongResult executes correctly but corrupts every reply (masked by
	// client reply certificates).
	WrongResult = pbft.WrongResult
)

// Options configures replicas and clients. The zero value is a sensible
// 4-replica simulation setup; all defaults are documented per field.
type Options struct {
	// Replicas is the group size n; the cluster tolerates (n-1)/3 faults.
	// Default 4. Values in 1..3 are rejected (3f+1 needs at least 4).
	Replicas int
	// Mode is BFT or BFTPK. Default BFT.
	Mode Mode
	// StateSize is the service region size in bytes. Default 64 KiB.
	StateSize int
	// PageSize is the checkpoint page size. Default 4096.
	PageSize int
	// CheckpointInterval is the checkpoint period K. Default 128.
	CheckpointInterval uint64
	// LogWindow is L, the water-mark window width bounding how far the
	// protocol runs ahead of the last stable checkpoint. Default
	// 2×CheckpointInterval; must be at least CheckpointInterval.
	LogWindow uint64
	// ViewChangeTimeout is the initial primary-failure timeout; it doubles
	// for consecutive view changes. Default 250ms.
	ViewChangeTimeout time.Duration
	// ProactiveRecovery enables BFT-PR with the given watchdog period
	// (Chapter 4); zero disables it.
	ProactiveRecovery time.Duration
	// DisableOptimizations turns off every Chapter 5 protocol optimization
	// (digest replies, tentative execution, read-only, batching, separate
	// request transmission); useful for measurement. The engine's internal
	// pipeline stages (ingress/egress/executor) are NOT optimizations and
	// stay on — they are how the replica runs, not what the paper ablates.
	DisableOptimizations bool
	// Batching knobs (§5.1.4; see README "Batching & pipelining"). The
	// primary drains its request queue into batches capped three ways:
	// BatchRequests bounds requests per batch (default 16), BatchBytes
	// bounds total operation bytes per batch (default 64 KiB; one request
	// larger than the cap still proposes, alone), and BatchWait is the
	// accumulate micro-deadline (default 1ms; negative disables it) — with
	// agreement already in flight, a sub-target batch is held open this
	// long so later arrivals can share the sequence number. The deadline
	// never delays a request when nothing is in flight, so latency at low
	// load is unchanged.
	BatchRequests int
	BatchBytes    int
	BatchWait     time.Duration
	// AgreementWindow is W, the number of batches allowed between the
	// execution frontier and the newest pre-prepare (§5.1.4 pipelining).
	// Default 8; must not exceed the effective LogWindow.
	AgreementWindow int
	// DisableBatching turns off §5.1.4 batching alone (one request per
	// pre-prepare), leaving the other optimizations on — the ablation's
	// serial baseline. FixedBatching keeps batching on but disables the
	// adaptive fill target, so every batch tries to fill to BatchRequests
	// (the thesis's fixed-cap behavior).
	DisableBatching bool
	FixedBatching   bool
	// FetchWindow bounds parallel state-transfer partition fetches in
	// flight (§6.2.2). Default 8; 1 reproduces the serial fetch engine.
	FetchWindow int
	// PipelineWorkers sizes the ingress (decode+verify) worker pool;
	// EgressWorkers sizes the egress (marshal+seal) pool. 0 means
	// GOMAXPROCS. On single-core hosts the pipelines default off.
	PipelineWorkers int
	EgressWorkers   int
	// InboxCap bounds each replica's receive queue; overflow models
	// receive-buffer loss (counted in Metrics.InboxDrops). Default 8192.
	InboxCap int
	// MaxClients is the number of client principals pre-registered by the
	// deterministic offline key setup: client ids (NewClient's first
	// argument) 0..MaxClients-1 are usable with this cluster. Default 128.
	MaxClients int
	// RetryTimeout is the client's base retransmission timeout (backs off
	// exponentially, §5.2). Default 150ms. MaxRetries bounds
	// retransmissions before Invoke fails. Default 10.
	RetryTimeout time.Duration
	MaxRetries   int
	// Durable enables the write-ahead log (README "Durability & crash
	// recovery"): every agreement vote, request, checkpoint certificate,
	// and view transition is logged under Dir before it can matter to the
	// group, and NewReplica over a non-empty Dir replays the log — the
	// replica restarts after a crash (even kill -9) with its state,
	// reply cache, and view intact, then catches up the lost tail from
	// the group. Dir must name a directory private to this process; each
	// replica uses its own subdirectory r<id>, so one Dir serves a whole
	// in-process cluster.
	Durable bool
	Dir     string
	// SyncEvery forces an fsync per record — every vote is durable before
	// it is sent, closing even the async window below at a large
	// throughput cost. Default off: records ride group commit, where the
	// log goroutine coalesces appends and fsyncs once per batch. SyncWait
	// is the coalescing window (default 1ms; negative syncs whatever has
	// accumulated without waiting). Checkpoint votes and view changes
	// always carry a durability barrier regardless of these knobs.
	SyncEvery bool
	SyncWait  time.Duration
	// Behavior injects a fault personality into a replica built with
	// NewReplica. (For clusters, use WithBehavior.)
	Behavior Behavior
	// Seed makes runs reproducible (simulation link model, replica PRNGs).
	Seed int64
}

// Validate checks the options for contradictions. The constructors call it
// and panic on error (configuration is a construction-time fault, like a
// bad address); call it directly to get the error instead.
func (o Options) Validate() error {
	if o.Replicas != 0 && o.Replicas < 4 {
		return fmt.Errorf("bft: Replicas=%d; the protocol needs n ≥ 4 (n=3f+1, f ≥ 1)", o.Replicas)
	}
	// Compare LogWindow against the EFFECTIVE checkpoint interval: an
	// explicit L below a defaulted K=128 would wedge the cluster (the
	// window could never contain a checkpoint, so it could never advance).
	k := o.CheckpointInterval
	if k == 0 {
		k = 128
	}
	if o.LogWindow != 0 && o.LogWindow < k {
		return fmt.Errorf("bft: LogWindow=%d < CheckpointInterval=%d; the water-mark window must cover at least one checkpoint interval", o.LogWindow, k)
	}
	// The agreement window is measured in batches but bounded by the
	// water-mark window in sequence numbers: pre-prepares beyond L are
	// refused, so W > L could never be honored.
	l := o.LogWindow
	if l == 0 {
		l = 2 * k
	}
	if o.AgreementWindow > 0 && uint64(o.AgreementWindow) > l {
		return fmt.Errorf("bft: AgreementWindow=%d > LogWindow=%d; the agreement window cannot exceed the water-mark window", o.AgreementWindow, l)
	}
	// An ordered list, not a map: with several negative options the error
	// reported must not depend on map iteration order.
	for _, nv := range []struct {
		name string
		v    int
	}{
		{"StateSize", o.StateSize},
		{"PageSize", o.PageSize},
		{"BatchRequests", o.BatchRequests},
		{"BatchBytes", o.BatchBytes},
		{"AgreementWindow", o.AgreementWindow},
		{"FetchWindow", o.FetchWindow},
		{"PipelineWorkers", o.PipelineWorkers},
		{"EgressWorkers", o.EgressWorkers},
		{"InboxCap", o.InboxCap},
		{"MaxClients", o.MaxClients},
		{"MaxRetries", o.MaxRetries},
	} {
		if nv.v < 0 {
			return fmt.Errorf("bft: %s must not be negative", nv.name)
		}
	}
	// BatchWait may be negative — that disables the accumulate deadline.
	// SyncWait may be negative too — that syncs without waiting.
	if o.RetryTimeout < 0 || o.ViewChangeTimeout < 0 || o.ProactiveRecovery < 0 {
		return fmt.Errorf("bft: durations must not be negative")
	}
	if o.Durable && o.Dir == "" {
		return fmt.Errorf("bft: Durable requires Dir (the write-ahead log needs a directory)")
	}
	return nil
}

// replicas returns the effective group size.
func (o Options) replicas() int {
	if o.Replicas == 0 {
		return 4
	}
	return o.Replicas
}

func (o Options) maxClients() int {
	if o.MaxClients == 0 {
		return 128
	}
	return o.MaxClients
}

// engineConfig lowers public Options onto the engine's per-replica Config.
// Engine pipeline defaults always come from pbft.DefaultOptions;
// DisableOptimizations strips only the Chapter 5 protocol optimizations.
func (o Options) engineConfig() pbft.Config {
	if err := o.Validate(); err != nil {
		panic(err)
	}
	opt := pbft.DefaultOptions()
	if o.DisableOptimizations {
		opt = opt.WithoutOptimizations()
	}
	if o.BatchRequests > 0 {
		opt.BatchRequests = o.BatchRequests
	}
	if o.BatchBytes > 0 {
		opt.BatchBytes = o.BatchBytes
	}
	if o.BatchWait != 0 {
		opt.BatchWait = o.BatchWait
	}
	if o.AgreementWindow > 0 {
		opt.AgreementWindow = o.AgreementWindow
	}
	if o.DisableBatching {
		opt.Batching = false
	}
	if o.FixedBatching {
		opt.AdaptiveBatch = false
	}
	if o.FetchWindow > 0 {
		opt.FetchWindow = o.FetchWindow
	}
	if o.PipelineWorkers > 0 {
		opt.PipelineWorkers = o.PipelineWorkers
	}
	if o.EgressWorkers > 0 {
		opt.EgressWorkers = o.EgressWorkers
	}
	cfg := pbft.Config{
		N:                  o.replicas(),
		Mode:               o.Mode,
		Opt:                opt,
		CheckpointInterval: message.Seq(o.CheckpointInterval),
		LogWindow:          message.Seq(o.LogWindow),
		ViewChangeTimeout:  o.ViewChangeTimeout,
		StateSize:          o.StateSize,
		PageSize:           o.PageSize,
		WatchdogInterval:   o.ProactiveRecovery,
		InboxCap:           o.InboxCap,
		Behavior:           o.Behavior,
		Seed:               o.Seed,
	}
	if o.ProactiveRecovery > 0 {
		cfg.KeyRefreshInterval = o.ProactiveRecovery / 2
	}
	if o.Durable {
		// The per-replica subdirectory is appended where the id is known
		// (NewReplica); the sync policy lowers directly.
		cfg.WALSyncEvery = o.SyncEvery
		cfg.WALSyncWait = o.SyncWait
	}
	return cfg
}

// dirCache memoizes offline directories by (n, maxClients): the setup is
// deterministic and a Directory is safe to share (principals re-register
// only their own identical keys), so in-process clusters and pools don't
// re-derive n+maxClients keypairs per node.
var dirCache sync.Map // [2]int -> *pbft.Directory

// offlineDirectory derives the shared offline key setup for this
// configuration; every node builds (or shares) an identical copy.
func (o Options) offlineDirectory() *pbft.Directory {
	key := [2]int{o.replicas(), o.maxClients()}
	if d, ok := dirCache.Load(key); ok {
		return d.(*pbft.Directory)
	}
	d, _ := dirCache.LoadOrStore(key, pbft.OfflineDirectory(key[0], key[1]))
	return d.(*pbft.Directory)
}

// NewRegion allocates a paged region for standalone service testing.
func NewRegion(size, pageSize int) *Region {
	return statemachine.NewRegion(size, pageSize)
}
