// Package bft is the public interface of the BFT library — the Go analogue
// of the C interface in §6.2 of Castro's thesis (Byz_init_client,
// Byz_invoke, Byz_init_replica, Byz_modify). It wraps the protocol engine
// in repro/internal/pbft behind a small, stable surface:
//
//	svc := ... // your deterministic state machine
//	cluster := bft.NewCluster(bft.Options{Replicas: 4}, svc)
//	cluster.Start()
//	defer cluster.Stop()
//	client := cluster.NewClient()
//	result, err := client.Invoke(op, false)
//
// The service executes inside a library-managed memory region divided into
// pages; services must announce writes with Region.Modify (or use the
// WriteAt helpers) so checkpointing, state transfer, and proactive recovery
// work. See internal/kvservice and internal/bfs for two complete services.
package bft

import (
	"time"

	"repro/internal/message"
	"repro/internal/pbft"
	"repro/internal/simnet"
	"repro/internal/statemachine"
)

// Service is the deterministic state machine the library replicates
// (Definition 2.4.1). See statemachine.Service for the contract.
type Service = statemachine.Service

// Region is the paged memory holding all service state.
type Region = statemachine.Region

// ServiceFactory builds one service instance bound to a replica's region.
type ServiceFactory = func(*Region) Service

// Mode selects the authentication flavor.
type Mode = pbft.Mode

// Authentication modes.
const (
	// BFT authenticates with MAC vectors (Chapter 3) — the fast, default
	// algorithm.
	BFT = pbft.ModeMAC
	// BFTPK signs every message (Chapter 2) — simpler, ~an order of
	// magnitude slower; kept for comparison.
	BFTPK = pbft.ModePK
)

// Options configures a cluster.
type Options struct {
	// Replicas is the group size n; the cluster tolerates (n-1)/3 faults.
	// Default 4.
	Replicas int
	// Mode is BFT or BFTPK. Default BFT.
	Mode Mode
	// StateSize is the service region size in bytes.
	StateSize int
	// PageSize is the checkpoint page size. Default 4096.
	PageSize int
	// CheckpointInterval is the checkpoint period K. Default 128.
	CheckpointInterval uint64
	// ViewChangeTimeout is the initial primary-failure timeout.
	ViewChangeTimeout time.Duration
	// ProactiveRecovery enables BFT-PR with the given watchdog period
	// (Chapter 4); zero disables it.
	ProactiveRecovery time.Duration
	// DisableOptimizations turns off every Chapter 5 optimization
	// (digest replies, tentative execution, read-only, batching, separate
	// request transmission); useful for measurement.
	DisableOptimizations bool
	// Seed makes runs reproducible.
	Seed int64
}

// Cluster is a replica group plus its (simulated) network.
type Cluster struct {
	inner *pbft.Cluster
}

// Client invokes operations on the replicated service.
type Client = pbft.Client

// NewCluster builds an in-process cluster of opts.Replicas replicas, each
// running its own instance of the service.
func NewCluster(opts Options, svc ServiceFactory) *Cluster {
	if opts.Replicas == 0 {
		opts.Replicas = 4
	}
	cfg := pbft.Config{
		Mode:               opts.Mode,
		Opt:                pbft.DefaultOptions(),
		CheckpointInterval: message.Seq(opts.CheckpointInterval),
		ViewChangeTimeout:  opts.ViewChangeTimeout,
		StateSize:          opts.StateSize,
		PageSize:           opts.PageSize,
		WatchdogInterval:   opts.ProactiveRecovery,
		Seed:               opts.Seed,
	}
	if opts.ProactiveRecovery > 0 {
		cfg.KeyRefreshInterval = opts.ProactiveRecovery / 2
	}
	if opts.DisableOptimizations {
		cfg.Opt = pbft.Options{}
	}
	return &Cluster{inner: pbft.NewLocalCluster(opts.Replicas, cfg, svc, nil)}
}

// Start launches every replica.
func (c *Cluster) Start() { c.inner.Start() }

// Stop shuts the cluster down.
func (c *Cluster) Stop() { c.inner.Stop() }

// NewClient attaches a client to the cluster.
func (c *Cluster) NewClient() *Client { return c.inner.NewClient() }

// Network exposes the simulated network for fault injection (partitions,
// latency, loss) in tests and demos.
func (c *Cluster) Network() *simnet.Network { return c.inner.Net }

// Replicas returns the number of replicas.
func (c *Cluster) Replicas() int { return c.inner.N() }

// FaultTolerance returns f = (n-1)/3.
func (c *Cluster) FaultTolerance() int { return c.inner.F() }

// Recover triggers proactive recovery of replica i immediately.
func (c *Cluster) Recover(i int) { c.inner.Replica(i).Recover() }

// Internal exposes the underlying engine cluster for advanced use
// (fault-injection behaviors, metrics); the API of internal/pbft is not
// covered by this package's compatibility promise.
func (c *Cluster) Internal() *pbft.Cluster { return c.inner }

// NewRegion allocates a paged region for standalone service testing.
func NewRegion(size, pageSize int) *Region {
	return statemachine.NewRegion(size, pageSize)
}
