package bft

import (
	"context"

	"repro/internal/message"
	"repro/internal/pbft"
)

func replicaID(i int) message.NodeID { return message.NodeID(i) }
func clientID(k int) message.NodeID  { return message.ClientIDBase + message.NodeID(k) }

// InvokeOption modifies one invocation.
type InvokeOption func(*invokeOpts)

type invokeOpts struct {
	readOnly bool
}

func foldInvokeOpts(opts []InvokeOption) invokeOpts {
	var io invokeOpts
	for _, o := range opts {
		o(&io)
	}
	return io
}

// ReadOnly marks the operation read-only, letting the library answer it in
// a single round trip without running the three-phase protocol (§5.1.3).
// The service's IsReadOnly upcall still guards it — a mutating operation
// flagged read-only is demoted to the read-write path at the replicas.
func ReadOnly(o *invokeOpts) { o.readOnly = true }

// Client invokes operations on the replicated service — §6.2's
// Byz_init_client/Byz_invoke with a modern contract: every invocation
// takes a context and honors cancellation mid-retry.
//
// One client principal has ONE operation in flight at a time (§2.3.2 —
// replicas order per-client requests by timestamp); concurrent calls on
// one Client serialize. Use a ClientPool for concurrency across principals.
type Client struct {
	inner *pbft.Client
	id    int
	// sem serializes invocations (ctx-aware, unlike a mutex).
	sem chan struct{}
}

// NewClient constructs client principal k (0 ≤ k < opts.MaxClients)
// attached to net.
func NewClient(k int, opts Options, net Network) *Client {
	cfg := opts.engineConfig()
	if k < 0 || k >= opts.maxClients() {
		panic("bft: client id out of range (raise Options.MaxClients)")
	}
	cl := pbft.NewClient(clientID(k), opts.offlineDirectory(), net, cfg.Mode, cfg.Opt)
	if opts.RetryTimeout > 0 {
		cl.RetryTimeout = opts.RetryTimeout
	}
	if opts.MaxRetries > 0 {
		cl.MaxRetries = opts.MaxRetries
	}
	c := &Client{inner: cl, id: k, sem: make(chan struct{}, 1)}
	return c
}

// ID returns the client's principal index.
func (c *Client) ID() int { return c.id }

// Invoke executes op on the replicated service and returns its result once
// a reply certificate assembles (f+1 matching replies; 2f+1 for tentative
// and read-only ones). It retransmits on timeout with exponential backoff
// and returns promptly with ctx.Err() if ctx is cancelled mid-flight; the
// client stays usable afterwards.
func (c *Client) Invoke(ctx context.Context, op []byte, opts ...InvokeOption) ([]byte, error) {
	return c.InvokeContext(ctx, op, foldInvokeOpts(opts).readOnly)
}

// InvokeContext is the option-free form of Invoke (the library-wide
// invocation interface shared with bft/fs and the workload drivers).
func (c *Client) InvokeContext(ctx context.Context, op []byte, readOnly bool) ([]byte, error) {
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-c.sem }()
	return c.inner.InvokeContext(ctx, op, readOnly)
}

// Future is the handle returned by InvokeAsync.
type Future struct {
	done chan struct{}
	res  []byte
	err  error
}

// goFuture runs fn on its own goroutine and resolves the returned Future
// with its result — the shared plumbing behind every InvokeAsync.
func goFuture(fn func() ([]byte, error)) *Future {
	f := &Future{done: make(chan struct{})}
	go func() {
		f.res, f.err = fn()
		close(f.done)
	}()
	return f
}

// Done is closed when the invocation completes.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the invocation completes or ctx is cancelled. Note
// that cancelling the WAIT does not cancel the invocation — cancel the
// context passed to InvokeAsync for that.
func (f *Future) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// InvokeAsync starts an invocation and returns immediately with a Future.
// Successive InvokeAsync calls on one client queue behind each other (one
// in flight per principal); fan out across a ClientPool for parallelism.
func (c *Client) InvokeAsync(ctx context.Context, op []byte, opts ...InvokeOption) *Future {
	return goFuture(func() ([]byte, error) { return c.Invoke(ctx, op, opts...) })
}

// Close detaches the client from the network. In-flight invocations fail.
func (c *Client) Close() { c.inner.Close() }
