package bft_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/bft"
	"repro/bft/kv"
)

// TestPublicAPIOverUDP is the multi-process-shaped acceptance test: a
// 4-replica cluster stands up over real UDP loopback sockets purely
// through the public per-node API, serves a ClientPool, survives the
// primary being killed mid-load, and completes — no simulator, no
// internal packages, no escape hatches.
func TestPublicAPIOverUDP(t *testing.T) {
	net, err := bft.LoopbackUDP(4, 3)
	if err != nil {
		t.Skipf("cannot bind loopback ports: %v", err)
	}

	opts := bft.Options{
		Replicas:          4,
		ViewChangeTimeout: 500 * time.Millisecond,
		RetryTimeout:      200 * time.Millisecond,
		MaxRetries:        20,
		MaxClients:        3,
		Seed:              1,
	}

	// Per-node construction, exactly what one process per node would do.
	// A reserved port can be lost to another process between LoopbackUDP's
	// probe and the real bind; that surfaces as an Attach panic, which —
	// like a LoopbackUDP failure — means loopback ports are unavailable,
	// not that the library is broken. Scope the recover to construction so
	// a panic anywhere later still fails the test.
	replicas := make([]*bft.Replica, 4)
	var pool *bft.ClientPool
	bindLost := func() (lost interface{}) {
		defer func() { lost = recover() }()
		for i := range replicas {
			replicas[i] = bft.NewReplica(i, opts, kv.Factory, net)
			replicas[i].Start()
		}
		pool = bft.NewClientPool(3, opts, net)
		return nil
	}()
	t.Cleanup(func() {
		for _, r := range replicas[1:] {
			if r != nil {
				r.Stop()
			}
		}
	})
	if bindLost != nil {
		if replicas[0] != nil {
			replicas[0].Stop()
		}
		t.Skipf("loopback port lost between reservation and bind: %v", bindLost)
	}
	t.Cleanup(pool.Close)
	ctx := context.Background()

	// Phase 1: concurrent load through the pool's distinct principals.
	const phase1 = 9
	var wg sync.WaitGroup
	errs := make(chan error, phase1)
	for i := 0; i < phase1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := pool.Invoke(ctx, kv.Incr()); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("udp pool invoke: %v", err)
	}

	// Phase 2: kill the primary of view 0. The backups' timers must elect
	// a new one and the pool must keep completing operations.
	replicas[0].Stop()
	for i := 0; i < 3; i++ {
		if _, err := pool.Invoke(ctx, kv.Incr()); err != nil {
			t.Fatalf("udp invoke after primary death: %v", err)
		}
	}

	// The counter must account for every completed operation exactly once.
	res, err := pool.Invoke(ctx, kv.Get(), bft.ReadOnly)
	if err != nil {
		t.Fatalf("udp read-only: %v", err)
	}
	if got := kv.DecodeU64(res); got != phase1+3 {
		t.Fatalf("counter=%d want %d", got, phase1+3)
	}

	if v := replicas[1].View(); v == 0 {
		t.Fatal("no view change after primary death")
	}
}
