package bft

import (
	"fmt"
	"path/filepath"

	"repro/internal/pbft"
)

// Replica is one member of the replica group — §6.2's Byz_init_replica.
// Each replica owns its own instance of the service (built by the factory
// over a library-allocated Region), its own keys (derived by the
// deterministic offline setup), and its own protocol engine; replicas
// coordinate only through the Network.
type Replica struct {
	inner *pbft.Replica
}

// NewReplica constructs replica id (0 ≤ id < opts.Replicas) attached to
// net. The replica is inert until Start. Construction panics on invalid
// options or an unbindable network address — configuration faults, caught
// before the cluster serves traffic.
func NewReplica(id int, opts Options, svc ServiceFactory, net Network) *Replica {
	cfg := opts.engineConfig()
	if id < 0 || id >= cfg.N {
		panic("bft: replica id out of range")
	}
	cfg.ID = replicaID(id)
	if opts.Durable {
		// One log directory per replica: an existing log is replayed here,
		// so constructing over a crashed replica's directory IS the
		// restart path.
		cfg.WALDir = filepath.Join(opts.Dir, fmt.Sprintf("r%d", id))
	}
	return &Replica{inner: pbft.NewReplica(cfg, opts.offlineDirectory(), net, svc)}
}

// Start launches the replica's event loop.
func (r *Replica) Start() { r.inner.Start() }

// Stop terminates the replica and detaches it from the network. With a
// write-ahead log configured, pending frames are flushed first — Stop is
// a clean shutdown.
func (r *Replica) Stop() { r.inner.Stop() }

// Kill crashes the replica: it stops sending and receiving immediately and
// un-fsynced log frames are abandoned, exactly as kill -9 would abandon
// them. Use it (instead of Stop) to test crash recovery; build a new
// replica with the same id and Options over the same Dir to restart.
func (r *Replica) Kill() { r.inner.Kill() }

// ID returns the replica's index in the group.
func (r *Replica) ID() int { return int(r.inner.ID()) }

// View returns the replica's current view number (the primary of view v is
// replica v mod n).
func (r *Replica) View() uint64 { return uint64(r.inner.View()) }

// LastExecuted returns the highest executed sequence number.
func (r *Replica) LastExecuted() uint64 { return uint64(r.inner.LastExecuted()) }

// LowWaterMark returns the sequence number of the last stable checkpoint.
func (r *Replica) LowWaterMark() uint64 { return uint64(r.inner.LowWaterMark()) }

// StateDigest returns the digest of the replica's full service state;
// correct replicas that have executed the same prefix agree on it.
func (r *Replica) StateDigest() Digest { return r.inner.StateDigest() }

// Metrics returns a snapshot of the replica's protocol and engine
// counters.
func (r *Replica) Metrics() Metrics { return r.inner.Metrics() }

// Recover triggers proactive recovery immediately (BFT-PR, Chapter 4),
// whether or not a watchdog period is configured.
func (r *Replica) Recover() { r.inner.Recover() }

// Recovering reports whether a proactive recovery is in progress.
func (r *Replica) Recovering() bool { return r.inner.Recovering() }

// CorruptStatePage flips bytes in one page of the replica's service state
// behind the library's back — a supported attack for demos and tests of
// the recovery state check (§5.3.3). Never call it on a production node.
func (r *Replica) CorruptStatePage(page int) { r.inner.CorruptStatePage(page) }
