// Package fs is the public face of BFS, the Byzantine-fault-tolerant file
// system of Chapter 6: an inode/block file system implemented as a
// replicated state machine, driven through a typed client that speaks the
// library-wide invocation contract — so it runs over a bft.Client, a
// bft.ClientPool, or any other Invoker:
//
//	cluster := bft.NewCluster(bft.Options{StateSize: fs.MinRegionSize(4096)}, fs.Factory)
//	...
//	fc := fs.NewClient(cluster.NewClient())
//	dir, _ := fc.MkdirAll("/projects/bft")
//	fc.WriteFile(dir, "README.md", data)
package fs

import (
	"repro/internal/bfs"
	"repro/internal/statemachine"
)

// Client is the typed BFS client (the analogue of the thesis's NFS relay).
// Set Strict to disable the read-only optimization for lookups and reads —
// the thesis's BFS-strict configuration (§8.6.2).
type Client = bfs.Client

// Invoker is the execution interface a Client drives: bft.Client,
// bft.ClientPool, and the engine's clients all satisfy it.
type Invoker = bfs.Invoker

// Attr is a file's metadata record; DirEntry one directory entry.
type Attr = bfs.Attr

// DirEntry is one directory entry returned by Client.Readdir.
type DirEntry = bfs.DirEntry

// File types stored in Attr.Type.
const (
	TypeFile    = bfs.TypeFile
	TypeDir     = bfs.TypeDir
	TypeSymlink = bfs.TypeSymlink
)

// RootIno is the root directory's inode number.
const RootIno = bfs.RootIno

// MaxFileSize bounds one file's size (direct + single-indirect blocks).
const MaxFileSize = bfs.MaxFileSize

// Factory builds one BFS instance per replica; pass it to bft.NewReplica
// or bft.NewCluster together with a StateSize of MinRegionSize(blocks).
func Factory(r *statemachine.Region) statemachine.Service {
	return bfs.Factory(r)
}

// NewClient wraps an invoker in the typed file-system client.
func NewClient(inv Invoker) *Client { return bfs.NewClient(inv) }

// MinRegionSize returns the smallest region holding a file system with the
// given number of data blocks.
func MinRegionSize(blocks int) int { return bfs.MinRegionSize(blocks) }
