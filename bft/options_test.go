package bft

import (
	"strings"
	"testing"
	"time"

	"repro/internal/pbft"
)

// TestDisableOptimizationsKeepsPipelines is the regression test for the
// DisableOptimizations bug: it used to zero the whole engine Options,
// silently turning off the ingress/egress/executor pipelines — engine
// stages, not Chapter 5 optimizations. A measurement run must keep the
// engine configuration identical and strip only the protocol
// optimizations.
func TestDisableOptimizationsKeepsPipelines(t *testing.T) {
	def := pbft.DefaultOptions()
	cfg := EngineConfig(Options{DisableOptimizations: true})

	if cfg.Opt.DigestReplies || cfg.Opt.TentativeExec || cfg.Opt.ReadOnly ||
		cfg.Opt.Batching || cfg.Opt.SeparateRequests {
		t.Fatalf("a Chapter 5 optimization survived DisableOptimizations: %+v", cfg.Opt)
	}
	if cfg.Opt.Pipeline != def.Pipeline ||
		cfg.Opt.EgressPipeline != def.EgressPipeline ||
		cfg.Opt.ExecPipeline != def.ExecPipeline {
		t.Fatalf("DisableOptimizations changed the engine pipelines: got %+v, engine default %+v",
			cfg.Opt, def)
	}
	if cfg.Opt.FetchWindow != def.FetchWindow {
		t.Fatalf("DisableOptimizations changed FetchWindow: %d vs %d",
			cfg.Opt.FetchWindow, def.FetchWindow)
	}
}

// TestOptionsKnobsReachEngine pins the lowering of every exposed tuning
// knob onto the engine config, so none can silently detach.
func TestOptionsKnobsReachEngine(t *testing.T) {
	cfg := EngineConfig(Options{
		Replicas:           7,
		CheckpointInterval: 32,
		LogWindow:          96,
		FetchWindow:        3,
		PipelineWorkers:    5,
		EgressWorkers:      6,
		InboxCap:           777,
		StateSize:          1 << 15,
		PageSize:           512,
		ViewChangeTimeout:  123 * time.Millisecond,
		Seed:               42,
		BatchRequests:      24,
		BatchBytes:         1 << 14,
		BatchWait:          700 * time.Microsecond,
		AgreementWindow:    12,
	})
	if cfg.N != 7 {
		t.Fatalf("N=%d", cfg.N)
	}
	if got := uint64(cfg.CheckpointInterval); got != 32 {
		t.Fatalf("K=%d", got)
	}
	if got := uint64(cfg.LogWindow); got != 96 {
		t.Fatalf("L=%d", got)
	}
	if cfg.Opt.FetchWindow != 3 || cfg.Opt.PipelineWorkers != 5 || cfg.Opt.EgressWorkers != 6 {
		t.Fatalf("pipeline knobs: %+v", cfg.Opt)
	}
	if cfg.InboxCap != 777 || cfg.StateSize != 1<<15 || cfg.PageSize != 512 {
		t.Fatalf("capacity knobs: inbox=%d state=%d page=%d", cfg.InboxCap, cfg.StateSize, cfg.PageSize)
	}
	if cfg.ViewChangeTimeout != 123*time.Millisecond || cfg.Seed != 42 {
		t.Fatalf("timing knobs: vc=%v seed=%d", cfg.ViewChangeTimeout, cfg.Seed)
	}
	if cfg.Opt.BatchRequests != 24 || cfg.Opt.BatchBytes != 1<<14 ||
		cfg.Opt.BatchWait != 700*time.Microsecond || cfg.Opt.AgreementWindow != 12 {
		t.Fatalf("batching knobs: %+v", cfg.Opt)
	}
	if got := EngineConfig(Options{Behavior: WrongResult}).Behavior; got != WrongResult {
		t.Fatalf("Behavior lowering lost: %v", got)
	}
	if cfg := EngineConfig(Options{DisableBatching: true}); cfg.Opt.Batching {
		t.Fatal("DisableBatching did not reach the engine")
	}
	if cfg := EngineConfig(Options{FixedBatching: true}); cfg.Opt.AdaptiveBatch || !cfg.Opt.Batching {
		t.Fatalf("FixedBatching lowering: adaptive=%v batching=%v",
			cfg.Opt.AdaptiveBatch, cfg.Opt.Batching)
	}
	if cfg := EngineConfig(Options{BatchWait: -time.Nanosecond}); cfg.Opt.BatchWait >= 0 {
		t.Fatalf("negative BatchWait (timer disabled) lost: %v", cfg.Opt.BatchWait)
	}
	// Defaults: batching on, adaptive on, thesis cap 16, window 8.
	def := EngineConfig(Options{})
	if !def.Opt.Batching || !def.Opt.AdaptiveBatch || def.Opt.BatchRequests != 16 ||
		def.Opt.AgreementWindow != 8 {
		t.Fatalf("batching defaults: %+v", def.Opt)
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		want string // substring of the error, "" = valid
	}{
		{"zero value", Options{}, ""},
		{"explicit group", Options{Replicas: 7}, ""},
		{"too small group", Options{Replicas: 3}, "n ≥ 4"},
		{"window under K", Options{CheckpointInterval: 64, LogWindow: 32}, "water-mark"},
		{"window under defaulted K", Options{LogWindow: 64}, "water-mark"},
		{"window at defaulted K", Options{LogWindow: 128}, ""},
		{"negative knob", Options{InboxCap: -1}, "negative"},
		{"negative duration", Options{RetryTimeout: -time.Second}, "negative"},
		{"negative batch cap", Options{BatchRequests: -1}, "negative"},
		{"negative byte cap", Options{BatchBytes: -1}, "negative"},
		{"negative BatchWait allowed", Options{BatchWait: -time.Millisecond}, ""},
		{"agreement window over L", Options{AgreementWindow: 300}, "water-mark"},
		{"agreement window over explicit L", Options{CheckpointInterval: 64, LogWindow: 64, AgreementWindow: 65}, "water-mark"},
		{"agreement window at L", Options{AgreementWindow: 256}, ""},
	}
	for _, c := range cases {
		err := c.o.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}
