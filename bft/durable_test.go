package bft_test

import (
	"testing"
	"time"

	"repro/bft"
	"repro/bft/kv"
)

// TestPublicAPIDurableRestart exercises the public crash-recovery path:
// a durable cluster loses one replica to Kill (un-fsynced log frames
// abandoned), the survivors keep serving, and Restart rebuilds the victim
// from its on-disk log, after which the whole group converges.
func TestPublicAPIDurableRestart(t *testing.T) {
	cluster := bft.NewCluster(bft.Options{
		Replicas:           4,
		Seed:               11,
		CheckpointInterval: 4,
		Durable:            true,
		Dir:                t.TempDir(),
		MaxRetries:         20,
	}, kv.Factory)
	cluster.Start()
	defer cluster.Stop()
	client := cluster.NewClient()

	const ops = 10
	for i := 1; i <= ops; i++ {
		res, err := client.Invoke(ctxb(), kv.Incr())
		if err != nil {
			t.Fatal(err)
		}
		if got := kv.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d -> %d", i, got)
		}
	}

	cluster.Kill(1)
	// Liveness with the victim down.
	if _, err := client.Invoke(ctxb(), kv.Incr()); err != nil {
		t.Fatal(err)
	}

	r := cluster.Restart(1)
	deadline := time.Now().Add(15 * time.Second)
	for r.LastExecuted() < ops+1 {
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica stuck at %d", r.LastExecuted())
		}
		time.Sleep(10 * time.Millisecond)
	}

	res, err := client.Invoke(ctxb(), kv.Get(), bft.ReadOnly)
	if err != nil || kv.DecodeU64(res) != ops+1 {
		t.Fatalf("get after restart: %v %d", err, kv.DecodeU64(res))
	}
	if m := r.Metrics(); m.WALAppends == 0 {
		t.Fatalf("restarted replica is not logging")
	}
}

// TestRestartAfterProactiveRecovery pins the interaction between the WAL
// and BFT-PR key refreshment (§4.3.1): a proactive recovery anywhere in the
// group rotates session keys cluster-wide, and that exchange — counters,
// announced in-keys, installed out-keys — must survive a later kill -9 of
// any OTHER replica, or the restarted replica comes back deaf (peers'
// rotated out-keys fail against its re-derived initial in-keys) and mute
// (its announcements reuse a co-processor counter peers suppress as
// replay). Regression test for exactly that wedge.
func TestRestartAfterProactiveRecovery(t *testing.T) {
	cluster := bft.NewCluster(bft.Options{
		Replicas:           4,
		Mode:               bft.BFT,
		Seed:               7,
		CheckpointInterval: 8,
		LogWindow:          16,
		ViewChangeTimeout:  300 * time.Millisecond,
		StateSize:          kv.MinStateSize,
		MaxRetries:         30,
		Durable:            true,
		Dir:                t.TempDir(),
	}, kv.Factory)
	cluster.Start()
	defer cluster.Stop()
	client := cluster.NewClient()

	incr := func(label string) {
		t.Helper()
		if _, err := client.Invoke(ctxb(), kv.Incr()); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
	}
	for i := 0; i < 12; i++ {
		incr("warmup")
	}

	// Proactively recover replica 2: every replica refreshes keys (peers
	// rotate the keys they chose for the recovering one, §4.3.2).
	cluster.Recover(2)
	deadline := time.Now().Add(15 * time.Second)
	for cluster.Replica(2).Recovering() {
		if time.Now().After(deadline) {
			t.Fatal("recovery never completed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	incr("post-recovery")

	// Kill -9 a DIFFERENT replica and restart it: its keystore state at
	// the crash includes rotated session keys it must recover from its log.
	cluster.Kill(0)
	for i := 0; i < 4; i++ {
		incr("victim down")
	}
	r := cluster.Restart(0)
	deadline = time.Now().Add(15 * time.Second)
	for r.LastExecuted() < cluster.Replica(1).LastExecuted() {
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica stuck at %d, group at %d",
				r.LastExecuted(), cluster.Replica(1).LastExecuted())
		}
		time.Sleep(20 * time.Millisecond)
	}
	incr("post-restart")
}

func TestDurableOptionValidation(t *testing.T) {
	if err := (bft.Options{Durable: true}).Validate(); err == nil {
		t.Fatal("Durable without Dir must be rejected")
	}
	if err := (bft.Options{Durable: true, Dir: t.TempDir()}).Validate(); err != nil {
		t.Fatal(err)
	}
}
