// Package sharded scales bft/kv horizontally: a Cluster runs k
// INDEPENDENT PBFT groups — each a full 3f+1 replica group built with the
// per-node API (bft.NewReplica over its own bft.Network) — and a Client
// routes every single-key operation to the group owning its key via a
// deterministic consistent-hash ring (internal/shardmap). Groups never
// talk to each other: aggregate throughput grows with k because each
// group runs its own primary, its own agreement pipeline, and its own
// batching, while per-key linearizability is untouched — one key lives in
// exactly one group's op order.
//
// Cross-shard writes are the one place coordination is needed, and the
// coordinator is the CLIENT, not the groups: PutMulti runs a two-phase
// lock/commit protocol whose every step is an ordinary ordered op inside
// a participating group (kv.TxLock / kv.TxCommit / kv.TxAbort on the
// keyed store). Locks carry a TTL lease and name the transaction's home
// group — the lowest participating shard — whose op order serializes the
// commit-vs-abort decision. A crashed coordinator therefore cannot wedge
// a key past the TTL: any blocked client resolves the stale holder
// through its home group (abort there if uncommitted, else propagate the
// commit) and moves on. See README §Sharding for the protocol argument.
//
// Reads take no locks: Get is the §5.1.3 quorum read inside the owning
// group, and MultiGet fans per-key quorum reads across the owning groups.
package sharded

import (
	"sync/atomic"
	"time"

	"repro/bft"
	"repro/internal/shardmap"
)

// Options configures a sharded cluster. The zero value is a sensible
// 2-shard simulation setup; Group carries the per-group bft.Options.
type Options struct {
	// Shards is k, the number of independent PBFT groups. Default 2.
	Shards int
	// VirtualNodes is the consistent-hash ring's per-shard virtual-node
	// count. Default shardmap.DefaultVirtualNodes (128).
	VirtualNodes int
	// PoolSize is the number of client principals per shard pool — the
	// per-shard in-flight limit (one op in flight per principal, §2.3.2).
	// Default 16.
	PoolSize int
	// LockTTL is the cross-shard lock lease. A transaction whose
	// coordinator disappears holds its keys at most this long before any
	// blocked client may resolve it through the home group. Default 3s.
	LockTTL time.Duration
	// Group configures each PBFT group (replica count, state size, link
	// behavior via Seed, ...). Seed is varied per group so k simulated
	// groups do not run in lockstep.
	Group bft.Options
	// NetworkFactory supplies the transport for each group — any
	// bft.Network; the caller keeps ownership of networks it returns.
	// Nil means a fresh simulated network per group, owned (and closed)
	// by the cluster.
	NetworkFactory func(group int) bft.Network
}

func (o Options) shards() int {
	if o.Shards == 0 {
		return 2
	}
	return o.Shards
}

func (o Options) poolSize() int {
	if o.PoolSize == 0 {
		return 16
	}
	return o.PoolSize
}

func (o Options) lockTTL() time.Duration {
	if o.LockTTL == 0 {
		return 3 * time.Second
	}
	return o.LockTTL
}

// Cluster is k independent PBFT groups behind one consistent-hash ring.
// Construct with New, then Start; hand out routing clients with
// NewClient. Group exposes each underlying bft.Cluster for fault
// injection and direct (single-group) clients in tests.
type Cluster struct {
	opts Options
	// bftlint:owner=shared (ring, groups, pools: immutable after New —
	// every routing client reads them lock-free)
	ring   *shardmap.Ring
	groups []*bft.Cluster
	pools  []*bft.ClientPool
	// txSeq feeds deterministic, process-unique transaction ids to every
	// coordinator attached to this cluster (see Client.nextTx).
	txSeq atomic.Uint64
}

// New builds (but does not start) a cluster of opts.Shards groups, each
// replicating its own instance of the service. For the cross-shard
// Put/Get/PutMulti/MultiGet surface the service must be kv.KeyedFactory
// (or wrap it); InvokeContext-level routing only needs ops kv.KeyOf can
// extract a key from.
func New(opts Options, svc bft.ServiceFactory) *Cluster {
	if opts.Shards < 0 {
		panic("sharded: Shards must not be negative")
	}
	k := opts.shards()
	c := &Cluster{
		opts: opts,
		ring: shardmap.New(k, opts.VirtualNodes),
	}
	for g := 0; g < k; g++ {
		gopts := opts.Group
		// De-correlate the groups' simulated networks and engine PRNGs:
		// k groups with one seed would replay identical loss/jitter draws.
		gopts.Seed += int64(g) * 7919
		var copts []bft.ClusterOption
		if opts.NetworkFactory != nil {
			copts = append(copts, bft.WithNetwork(opts.NetworkFactory(g)))
		}
		grp := bft.NewCluster(gopts, svc, copts...)
		c.groups = append(c.groups, grp)
		c.pools = append(c.pools, grp.NewClientPool(opts.poolSize()))
	}
	return c
}

// Start launches every replica of every group.
func (c *Cluster) Start() {
	for _, g := range c.groups {
		g.Start()
	}
}

// Stop stops every group (replicas, pools, clients) and closes the
// networks the cluster created.
func (c *Cluster) Stop() {
	for _, g := range c.groups {
		g.Stop()
	}
}

// Shards returns k, the number of groups.
func (c *Cluster) Shards() int { return len(c.groups) }

// Owner returns the shard owning key — the ring's answer, exposed so
// tests and tools can audit placement.
func (c *Cluster) Owner(key []byte) int { return c.ring.Owner(key) }

// Group returns shard g's underlying bft.Cluster: use it for fault
// injection (Isolate, Partition, Recover) and for direct single-group
// clients in tests.
func (c *Cluster) Group(g int) *bft.Cluster { return c.groups[g] }

// Metrics is the sharded deployment's observability rollup: Total merges
// every replica of every group (bft.SumMetrics semantics) and Shards
// holds one per-group rollup in shard order.
type Metrics struct {
	Total  bft.Metrics
	Shards []bft.Metrics
}

// Metrics snapshots every replica of every group and aggregates.
func (c *Cluster) Metrics() Metrics {
	m := Metrics{Shards: make([]bft.Metrics, len(c.groups))}
	for g, grp := range c.groups {
		snaps := make([]bft.Metrics, grp.Replicas())
		for i := range snaps {
			snaps[i] = grp.Replica(i).Metrics()
		}
		m.Shards[g] = bft.SumMetrics(snaps...)
	}
	m.Total = bft.SumMetrics(m.Shards...)
	return m
}
