package sharded

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/bft"
	"repro/bft/kv"
)

func testCluster(t *testing.T, shards int, mut func(*Options)) *Cluster {
	t.Helper()
	opts := Options{
		Shards:   shards,
		PoolSize: 4,
		Group: bft.Options{
			Replicas: 4,
			Seed:     42,
		},
	}
	if mut != nil {
		mut(&opts)
	}
	c := New(opts, kv.KeyedFactory)
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// keyOn returns a key the ring places on the wanted shard.
func keyOn(t *testing.T, c *Cluster, shard int, salt string) []byte {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("%s-%d", salt, i))
		if c.Owner(k) == shard {
			return k
		}
	}
	t.Fatalf("no key found for shard %d", shard)
	return nil
}

func TestSingleKeyOpsLandOnOwningGroupOnly(t *testing.T) {
	c := testCluster(t, 3, nil)
	ctx := testCtx(t)
	cl := c.NewClient()

	keys := make([][]byte, 0, 9)
	for g := 0; g < c.Shards(); g++ {
		for j := 0; j < 3; j++ {
			keys = append(keys, keyOn(t, c, g, fmt.Sprintf("own%d%d", g, j)))
		}
	}
	for i, k := range keys {
		if err := cl.Put(ctx, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
	}

	// Ask every group directly: the value must exist on the owning group
	// and on NO other — single-key ops never leak across the ring.
	for i, k := range keys {
		owner := c.Owner(k)
		for g := 0; g < c.Shards(); g++ {
			direct := c.Group(g).NewClient()
			res, err := direct.Invoke(ctx, kv.GetKey(k), bft.ReadOnly)
			if err != nil {
				t.Fatalf("direct get on group %d: %v", g, err)
			}
			st := kv.DecodeStatus(res)
			if g == owner && st != kv.StatusOK {
				t.Fatalf("key %q missing on its owner group %d: status %d", k, g, st)
			}
			if g != owner && st != kv.StatusNotFound {
				t.Fatalf("key %q leaked to group %d (owner %d): status %d", k, g, owner, st)
			}
			if g == owner {
				if v, _ := kv.DecodeValue(res); !bytes.Equal(v, []byte(fmt.Sprintf("v%d", i))) {
					t.Fatalf("key %q = %q on owner", k, v)
				}
			}
		}
	}

	// Reads route the same way, and the round-trip value survives.
	for i, k := range keys {
		v, found, err := cl.Get(ctx, k)
		if err != nil || !found || !bytes.Equal(v, []byte(fmt.Sprintf("v%d", i))) {
			t.Fatalf("get %q = %q found=%v err=%v", k, v, found, err)
		}
	}

	// Ops without a routing key are refused, not misrouted.
	if _, err := cl.InvokeContext(ctx, kv.TxStatus(1), true); err != ErrNoKey {
		t.Fatalf("keyless op: err = %v, want ErrNoKey", err)
	}
}

func TestPutMultiCrossShard(t *testing.T) {
	c := testCluster(t, 2, nil)
	ctx := testCtx(t)
	cl := c.NewClient()

	k0 := keyOn(t, c, 0, "pm")
	k1 := keyOn(t, c, 1, "pm")
	writes := []kv.TxKV{{Key: k0, Val: []byte("left")}, {Key: k1, Val: []byte("right")}}
	if err := cl.PutMulti(ctx, writes); err != nil {
		t.Fatalf("PutMulti: %v", err)
	}
	vals, found, err := cl.MultiGet(ctx, [][]byte{k0, k1})
	if err != nil || !found[0] || !found[1] {
		t.Fatalf("MultiGet: %v %v", found, err)
	}
	if !bytes.Equal(vals[0], []byte("left")) || !bytes.Equal(vals[1], []byte("right")) {
		t.Fatalf("MultiGet = %q", vals)
	}

	// Single-shard PutMulti works too (degenerate one-participant tx).
	if err := cl.PutMulti(ctx, []kv.TxKV{{Key: k0, Val: []byte("solo")}}); err != nil {
		t.Fatalf("single-shard PutMulti: %v", err)
	}
	if v, _, _ := cl.Get(ctx, k0); !bytes.Equal(v, []byte("solo")) {
		t.Fatalf("k0 = %q", v)
	}
}

func TestCrossShardWriteSurvivesPrimaryKill(t *testing.T) {
	c := testCluster(t, 2, nil)
	ctx := testCtx(t)
	cl := c.NewClient()

	k0 := keyOn(t, c, 0, "pk")
	k1 := keyOn(t, c, 1, "pk")
	victim := c.Owner(k1) // the non-home participant

	// Mid-two-phase fault: the instant the victim group's lock is ordered,
	// isolate its primary. The commit that follows must ride the group's
	// view change — atomicity may not depend on any primary staying up.
	killed := false
	cl.hookLocked = func(shard int) {
		if shard == victim && !killed {
			killed = true
			if err := c.Group(victim).Isolate(0); err != nil {
				t.Errorf("isolate: %v", err)
			}
		}
	}
	writes := []kv.TxKV{{Key: k0, Val: []byte("A")}, {Key: k1, Val: []byte("B")}}
	if err := cl.PutMulti(ctx, writes); err != nil {
		t.Fatalf("PutMulti across primary kill: %v", err)
	}
	if !killed {
		t.Fatal("test premise broken: hook never fired for the victim group")
	}

	// Atomic: both keys committed, exactly the staged values.
	for i, k := range [][]byte{k0, k1} {
		v, found, err := cl.Get(ctx, k)
		if err != nil || !found {
			t.Fatalf("get %q: found=%v err=%v", k, found, err)
		}
		if want := []byte{byte('A' + i)}; !bytes.Equal(v, want) {
			t.Fatalf("key %q = %q, want %q", k, v, want)
		}
	}
	if v := c.Group(victim).Replica(1).View(); v == 0 {
		t.Errorf("victim group never changed view; the kill did not bite")
	}

	// Exactly-once: the decision is recorded on both groups, and replaying
	// phase 2 only replays the recorded outcome.
	txid := c.txSeq.Load() // the last id handed out — the committed tx
	for g := 0; g < c.Shards(); g++ {
		res, err := cl.shard(ctx, g, kv.TxCommit(cl.now(), txid), false)
		if err != nil {
			t.Fatalf("re-commit on group %d: %v", g, err)
		}
		if st := kv.DecodeStatus(res); st != kv.StatusCommitted {
			t.Fatalf("re-commit on group %d: status %d, want Committed", g, st)
		}
	}
}

func TestCoordinatorCrashUnwedgesPastTTL(t *testing.T) {
	const ttl = 300 * time.Millisecond
	c := testCluster(t, 2, func(o *Options) { o.LockTTL = ttl })
	ctx := testCtx(t)

	k0 := keyOn(t, c, 0, "cc")
	k1 := keyOn(t, c, 1, "cc")

	// A coordinator locks both shards (home = shard of k0's group walk
	// order: ascending, so group 0) ... and vanishes before phase 2.
	dead := c.NewClient()
	txid := dead.nextTx()
	home := uint32(0)
	for _, lock := range []struct {
		shard int
		key   []byte
	}{{0, k0}, {1, k1}} {
		res, err := dead.shard(ctx, lock.shard, kv.TxLock(dead.now(), txid, home, uint64(ttl.Nanoseconds()),
			[]kv.TxKV{{Key: lock.key, Val: []byte("never")}}), false)
		if err != nil || kv.DecodeStatus(res) != kv.StatusOK {
			t.Fatalf("lock shard %d: %v status %d", lock.shard, err, kv.DecodeStatus(res))
		}
	}

	// Another client writing the non-home key blocks on the stale lock,
	// resolves it through the HOME group once the TTL lapses, and succeeds.
	cl := c.NewClient()
	start := time.Now()
	if err := cl.Put(ctx, k1, []byte("alive")); err != nil {
		t.Fatalf("put against stale lock: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("recovery took %v", elapsed)
	}
	if v, _, _ := cl.Get(ctx, k1); !bytes.Equal(v, []byte("alive")) {
		t.Fatalf("k1 = %q", v)
	}

	// The home key is unlocked by the same resolution (abort released it
	// everywhere it is driven); a plain put must go straight through.
	if err := cl.Put(ctx, k0, []byte("also alive")); err != nil {
		t.Fatalf("put home key after recovery: %v", err)
	}
	// The crashed tx's value leaked nowhere.
	if v, _, _ := cl.Get(ctx, k0); bytes.Equal(v, []byte("never")) {
		t.Fatal("aborted transaction's staged value became visible")
	}

	// The late coordinator coming back finds its tx dead on both shards:
	// commit is refused with the recorded outcome, never applied.
	for g := 0; g < c.Shards(); g++ {
		res, err := dead.shard(ctx, g, kv.TxCommit(dead.now(), txid), false)
		if err != nil {
			t.Fatalf("late commit on group %d: %v", g, err)
		}
		if st := kv.DecodeStatus(res); st != kv.StatusAborted {
			t.Fatalf("late commit on group %d: status %d, want Aborted", g, st)
		}
	}
}

func TestContendingPutMultisSettle(t *testing.T) {
	// Two coordinators racing over the same cross-shard key set must both
	// complete (ascending lock order prevents deadlock; Busy resolution
	// waits out live leases) and leave one of the two write sets, intact.
	c := testCluster(t, 2, func(o *Options) { o.LockTTL = time.Second })
	ctx := testCtx(t)
	k0 := keyOn(t, c, 0, "race")
	k1 := keyOn(t, c, 1, "race")

	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			cl := c.NewClient()
			tag := []byte{byte('X' + i)}
			errs <- cl.PutMulti(ctx, []kv.TxKV{{Key: k0, Val: tag}, {Key: k1, Val: tag}})
		}(i)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("contending PutMulti: %v", err)
		}
	}
	cl := c.NewClient()
	v0, _, err0 := cl.Get(ctx, k0)
	v1, _, err1 := cl.Get(ctx, k1)
	if err0 != nil || err1 != nil {
		t.Fatalf("get: %v %v", err0, err1)
	}
	if !bytes.Equal(v0, v1) {
		t.Fatalf("torn cross-shard write: k0=%q k1=%q", v0, v1)
	}
	if !bytes.Equal(v0, []byte("X")) && !bytes.Equal(v0, []byte("Y")) {
		t.Fatalf("unexpected final value %q", v0)
	}
}

func TestClusterMetricsRollup(t *testing.T) {
	c := testCluster(t, 2, nil)
	ctx := testCtx(t)
	cl := c.NewClient()
	for g := 0; g < c.Shards(); g++ {
		if err := cl.Put(ctx, keyOn(t, c, g, "met"), []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	m := c.Metrics()
	if len(m.Shards) != 2 {
		t.Fatalf("shard breakdown has %d entries", len(m.Shards))
	}
	var sum uint64
	for g, sm := range m.Shards {
		if sm.RequestsExecuted == 0 {
			t.Errorf("shard %d executed nothing", g)
		}
		sum += sm.RequestsExecuted
	}
	if m.Total.RequestsExecuted != sum {
		t.Fatalf("rollup %d != per-shard sum %d", m.Total.RequestsExecuted, sum)
	}
}
