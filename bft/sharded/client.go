package sharded

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/bft/kv"
)

// ErrNoKey is returned by InvokeContext for an operation kv.KeyOf cannot
// extract a routing key from.
var ErrNoKey = errors.New("sharded: operation carries no routing key")

// Client routes operations across the cluster's groups and coordinates
// cross-shard writes. It is a lightweight handle over the cluster's
// per-shard pools — safe for concurrent use, with concurrency bounded by
// each shard's pool (Options.PoolSize in-flight ops per shard).
type Client struct {
	c *Cluster
	// now is the coordinator clock (nanoseconds) embedded in keyed-store
	// ops; it only drives lock-lease bookkeeping. Overridable in tests.
	now func() uint64
	// hookLocked fires after each successful TxLock during PutMulti —
	// a test seam for killing primaries or coordinators mid-two-phase.
	hookLocked func(shard int)
}

// NewClient hands out a routing client. Clients share the cluster's
// per-shard pools, so creating many of them does not raise the per-shard
// in-flight limit.
func (c *Cluster) NewClient() *Client {
	return &Client{c: c, now: func() uint64 { return uint64(time.Now().UnixNano()) }}
}

// nextTx returns a transaction id unique within this cluster handle.
// Multi-process deployments must partition the id space per coordinator
// process (e.g. high bits from the process's client-principal range);
// in-process — the scope of this package today — the shared counter is
// already collision-free.
func (cl *Client) nextTx() uint64 { return cl.c.txSeq.Add(1) }

// shard invokes op inside group g through its pool.
func (cl *Client) shard(ctx context.Context, g int, op []byte, readOnly bool) ([]byte, error) {
	return cl.c.pools[g].InvokeContext(ctx, op, readOnly)
}

// InvokeContext routes a single-key keyed-store op to the owning group —
// the library-wide invoker contract, so a sharded client drops into any
// driver a bft.Client fits (including workload.RunOpenLoop).
func (cl *Client) InvokeContext(ctx context.Context, op []byte, readOnly bool) ([]byte, error) {
	key, ok := kv.KeyOf(op)
	if !ok {
		return nil, ErrNoKey
	}
	return cl.shard(ctx, cl.c.ring.Owner(key), op, readOnly)
}

// Put writes one key, retrying through lock-holder recovery: a key held
// by a stale transaction (coordinator gone past its TTL) is resolved via
// the holder's home group and the write retried. Blocks until the write
// applies or ctx ends.
func (cl *Client) Put(ctx context.Context, key, val []byte) error {
	owner := cl.c.ring.Owner(key)
	for {
		res, err := cl.shard(ctx, owner, kv.Put(cl.now(), key, val), false)
		if err != nil {
			return err
		}
		switch st := kv.DecodeStatus(res); st {
		case kv.StatusOK:
			return nil
		case kv.StatusBusy:
			info, _ := kv.DecodeBusy(res)
			if err := cl.resolve(ctx, owner, info); err != nil {
				return err
			}
		default:
			return fmt.Errorf("sharded: put %q: status %d", key, st)
		}
	}
}

// Get reads one key with the owning group's quorum read (§5.1.3); found
// is false when the key is absent.
func (cl *Client) Get(ctx context.Context, key []byte) (val []byte, found bool, err error) {
	res, err := cl.shard(ctx, cl.c.ring.Owner(key), kv.GetKey(key), true)
	if err != nil {
		return nil, false, err
	}
	switch st := kv.DecodeStatus(res); st {
	case kv.StatusOK:
		v, _ := kv.DecodeValue(res)
		return v, true, nil
	case kv.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("sharded: get %q: status %d", key, st)
	}
}

// MultiGet fans per-key quorum reads across the owning groups and
// assembles the answers in key order. It takes no locks: each element is
// the committed value its group's quorum vouched for at read time.
func (cl *Client) MultiGet(ctx context.Context, keys [][]byte) (vals [][]byte, found []bool, err error) {
	vals = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	errs := make([]error, len(keys))
	var wg sync.WaitGroup
	for i, key := range keys {
		wg.Add(1)
		go func(i int, key []byte) {
			defer wg.Done()
			vals[i], found[i], errs[i] = cl.Get(ctx, key)
		}(i, key)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, nil, e
		}
	}
	return vals, found, nil
}

// PutMulti atomically writes a set of keys that may span shards: all of
// them commit or none do, with exactly-once effect, even across view
// changes inside participating groups and coordinator retries.
//
// The client coordinates a two-phase protocol whose steps are ordinary
// ordered ops in each group: phase 1 locks and stages every key, walking
// the participating shards in ASCENDING order (a global lock order, so
// two contending transactions cannot deadlock — the lower-ordered one
// wins the first contended group). The lowest participating shard is the
// transaction's HOME; phase 2 commits there first — the home group's op
// order is the commit point — then releases the remaining shards.
// Contention and stale holders are resolved through resolve; a lost race
// restarts with a fresh transaction id.
func (cl *Client) PutMulti(ctx context.Context, writes []kv.TxKV) error {
	if len(writes) == 0 {
		return nil
	}
	// Bucket writes per owning shard, walking shard ids — never a map —
	// so participant order is the global ascending lock order.
	buckets := make([][]kv.TxKV, cl.c.Shards())
	for _, w := range writes {
		g := cl.c.ring.Owner(w.Key)
		buckets[g] = append(buckets[g], w)
	}
	var participants []int
	for g, b := range buckets {
		if len(b) > 0 {
			participants = append(participants, g)
		}
	}
	home := participants[0]
	ttl := uint64(cl.c.opts.lockTTL().Nanoseconds())

attempt:
	for {
		txid := cl.nextTx()
		var locked []int
		for _, p := range participants {
			for { // lock this participant, resolving contention
				res, err := cl.shard(ctx, p, kv.TxLock(cl.now(), txid, uint32(home), ttl, buckets[p]), false)
				if err != nil {
					cl.release(ctx, txid, locked)
					return err
				}
				switch st := kv.DecodeStatus(res); st {
				case kv.StatusOK:
				case kv.StatusBusy:
					info, _ := kv.DecodeBusy(res)
					if err := cl.resolve(ctx, p, info); err != nil {
						cl.release(ctx, txid, locked)
						return err
					}
					continue
				case kv.StatusAborted:
					// A contender resolved us past our TTL (we were too
					// slow). The abort is recorded; release what we hold
					// and restart under a fresh id.
					cl.release(ctx, txid, locked)
					continue attempt
				default:
					cl.release(ctx, txid, locked)
					return fmt.Errorf("sharded: lock on shard %d: status %d", p, st)
				}
				break
			}
			locked = append(locked, p)
			if cl.hookLocked != nil {
				cl.hookLocked(p)
			}
		}

		// Phase 2: the home group's op order decides the transaction.
		res, err := cl.shard(ctx, home, kv.TxCommit(cl.now(), txid), false)
		if err != nil {
			// The commit may or may not have been ordered — the engine's
			// exactly-once cache hides nothing here because the op itself
			// is idempotent; but with ctx gone we cannot find out. Leave
			// resolution to TTL recovery.
			return err
		}
		switch st := kv.DecodeStatus(res); st {
		case kv.StatusCommitted:
		case kv.StatusAborted:
			// Lost the race at home (a contender aborted us there before
			// our commit was ordered). Release the others and restart.
			cl.release(ctx, txid, participants[1:])
			continue attempt
		default:
			return fmt.Errorf("sharded: commit at home shard %d: status %d", home, st)
		}
		// Home committed: the outcome is decided; releasing the remaining
		// shards cannot fail semantically (commit is idempotent, and any
		// contender's recovery propagates the same outcome).
		for _, p := range participants[1:] {
			res, err := cl.shard(ctx, p, kv.TxCommit(cl.now(), txid), false)
			if err != nil {
				return err
			}
			if st := kv.DecodeStatus(res); st != kv.StatusCommitted {
				return fmt.Errorf("sharded: commit at shard %d: status %d", p, st)
			}
		}
		return nil
	}
}

// release force-aborts txid at the given shards — the coordinator
// abandoning its own transaction (so force is safe: it is ours, and we
// have not committed at home). Best-effort: a shard that cannot be
// reached stays locked until TTL recovery unblocks it.
func (cl *Client) release(ctx context.Context, txid uint64, shards []int) {
	for _, p := range shards {
		if _, err := cl.shard(ctx, p, kv.TxAbort(cl.now(), txid, true), false); err != nil {
			return
		}
	}
}

// resolve unblocks a key held by transaction info.Tx observed on
// stuckShard. Inside the lease it just waits the remainder out (the
// coordinator may well be alive and mid-protocol). Past the lease it
// resolves through the holder's HOME group — abort there if the tx never
// committed, and whatever the home answers (Committed from a slow
// coordinator, Aborted otherwise) is propagated to the stuck shard,
// releasing the lock. This is why a crashed coordinator cannot wedge a
// key past its TTL.
func (cl *Client) resolve(ctx context.Context, stuckShard int, info kv.BusyInfo) error {
	if int(info.Home) >= cl.c.Shards() {
		return fmt.Errorf("sharded: busy reply names home shard %d of %d", info.Home, cl.c.Shards())
	}
	if !info.Expired() {
		wait := time.Duration(info.Expiry - info.Now)
		if limit := 100 * time.Millisecond; wait > limit {
			wait = limit
		}
		select {
		case <-time.After(wait):
			return nil // lease ran down (or the holder finished): caller retries
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	res, err := cl.shard(ctx, int(info.Home), kv.TxAbort(cl.now(), info.Tx, false), false)
	if err != nil {
		return err
	}
	var propagate []byte
	switch st := kv.DecodeStatus(res); st {
	case kv.StatusAborted:
		// Home never committed it (or someone already resolved it the
		// same way): force the release on the stuck shard — safe, the
		// home's tombstone refuses any late commit.
		propagate = kv.TxAbort(cl.now(), info.Tx, true)
	case kv.StatusCommitted:
		// A slow coordinator got its commit ordered at home: finish its
		// job on the stuck shard.
		propagate = kv.TxCommit(cl.now(), info.Tx)
	case kv.StatusBusy:
		// The home group's lease frame lags the stuck shard's (fewer ops
		// executed there): not expired everywhere yet. Wait and retry.
		select {
		case <-time.After(10 * time.Millisecond):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	default:
		return fmt.Errorf("sharded: resolving tx %d at home shard %d: status %d", info.Tx, info.Home, st)
	}
	if int(info.Home) == stuckShard {
		return nil // resolving the home WAS the release
	}
	res, err = cl.shard(ctx, stuckShard, propagate, false)
	if err != nil {
		return err
	}
	if st := kv.DecodeStatus(res); st != kv.StatusAborted && st != kv.StatusCommitted {
		return fmt.Errorf("sharded: propagating tx %d outcome to shard %d: status %d", info.Tx, stuckShard, st)
	}
	return nil
}
