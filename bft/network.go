package bft

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/message"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/udpnet"
)

// Network is the substrate replicas and clients attach to. The library
// ships two: SimNetwork (in-process simulation with fault injection) and
// UDPNetwork (real UDP sockets, one node per process if you like — §6.1).
// Any transport.Network implementation works, so tests can supply their
// own.
type Network = transport.Network

// LinkProfile models one direction of a link in the simulated network.
type LinkProfile struct {
	// Latency is the fixed one-way propagation delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// BytesPerSec models serialization time (0 = infinite bandwidth).
	BytesPerSec float64
	// LossRate drops datagrams with this probability in [0,1).
	LossRate float64
	// DupRate duplicates datagrams with this probability in [0,1).
	DupRate float64
}

func (p LinkProfile) toSim() simnet.LinkConfig {
	return simnet.LinkConfig{
		Latency:     p.Latency,
		Jitter:      p.Jitter,
		BytesPerSec: p.BytesPerSec,
		LossRate:    p.LossRate,
		DupRate:     p.DupRate,
	}
}

// SimOption configures a SimNetwork.
type SimOption func(*simConfig)

type simConfig struct {
	seed    int64
	profile LinkProfile
}

// SimSeed seeds the network PRNG for reproducible loss/jitter draws.
func SimSeed(seed int64) SimOption {
	return func(c *simConfig) { c.seed = seed }
}

// SimLinks sets the default link profile for every link.
func SimLinks(p LinkProfile) SimOption {
	return func(c *simConfig) { c.profile = p }
}

// SimNet is the in-process simulated network: messages may be delayed,
// dropped, duplicated, or reordered per the configured link profiles, and
// the typed fault-injection surface (Partition, Isolate, Heal) models the
// scenarios of §2.4.2. It implements Network.
type SimNet struct {
	inner *simnet.Network

	mu       sync.Mutex
	replicas map[int]struct{} // replica ids seen in Attach
}

var _ Network = (*SimNet)(nil)

// SimNetwork builds a simulated network.
func SimNetwork(opts ...SimOption) *SimNet {
	var c simConfig
	c.seed = 1
	for _, o := range opts {
		o(&c)
	}
	return &SimNet{
		inner: simnet.New(
			simnet.WithSeed(c.seed),
			simnet.WithDefaults(c.profile.toSim()),
		),
		replicas: make(map[int]struct{}),
	}
}

// Attach implements Network.
func (s *SimNet) Attach(id message.NodeID, h transport.Handler) transport.Transport {
	if !id.IsClient() {
		s.mu.Lock()
		s.replicas[int(id)] = struct{}{}
		s.mu.Unlock()
	}
	return s.inner.Attach(id, h)
}

// SetLinkProfile replaces the default link model for every link at runtime.
func (s *SimNet) SetLinkProfile(p LinkProfile) { s.inner.SetDefaults(p.toSim()) }

// SetReplicaLink overrides the model for the directed replica link
// src->dst (both replica indices).
func (s *SimNet) SetReplicaLink(src, dst int, p LinkProfile) {
	s.inner.SetLink(message.NodeID(src), message.NodeID(dst), p.toSim())
}

// Partition splits the REPLICAS into groups: replica-to-replica traffic
// crossing a group boundary (or touching a replica in no group) is dropped
// until Heal. Clients keep reaching every replica — a partition separates
// the service's machines, not its users.
func (s *SimNet) Partition(groups ...[]int) {
	members := make(map[int]int)
	for gi, g := range groups {
		for _, r := range g {
			members[r] = gi
		}
	}
	s.mu.Lock()
	all := make([]int, 0, len(s.replicas))
	for r := range s.replicas {
		all = append(all, r)
	}
	s.mu.Unlock()
	for _, r := range all {
		if _, ok := members[r]; !ok {
			members[r] = -1 // attached but in no group: cut from every group
		}
	}
	ids := make([]int, 0, len(members))
	for r := range members {
		ids = append(ids, r)
	}
	for _, a := range ids {
		for _, b := range ids {
			if a == b {
				continue
			}
			if members[a] != members[b] || members[a] == -1 {
				s.inner.Block(message.NodeID(a), message.NodeID(b))
			}
		}
	}
}

// Isolate severs all traffic to and from replica r (clients included).
func (s *SimNet) Isolate(r int) { s.inner.Isolate(message.NodeID(r)) }

// Heal removes every partition and isolation.
func (s *SimNet) Heal() { s.inner.Heal() }

// Stats returns network-wide datagram counters.
func (s *SimNet) Stats() (sent, dropped uint64) {
	st := s.inner.Stats()
	return st.MsgsSent, st.MsgsDropped + st.MsgsOverflow
}

// Close shuts the simulated network down.
func (s *SimNet) Close() { s.inner.Close() }

// UDPNet is a Network over real UDP sockets: each principal binds the
// address the shared address book assigns it, exactly like the thesis's
// deployment (§6.1). Every process of a multi-process cluster constructs
// the SAME UDPNet configuration and attaches only its own node(s).
type UDPNet struct {
	inner *udpnet.Network
}

var _ Network = (*UDPNet)(nil)

// UDPNetwork builds a UDP address book: replicaAddrs[i] is replica i's
// host:port, clientAddrs[k] is client principal k's (replies are datagrams
// too, so clients need addresses replicas can reach). Addresses are
// resolved eagerly; a bad one fails construction.
func UDPNetwork(replicaAddrs, clientAddrs []string) (*UDPNet, error) {
	book := udpnet.NewAddressBook()
	for i, a := range replicaAddrs {
		if err := book.Set(message.NodeID(i), a); err != nil {
			return nil, fmt.Errorf("bft: replica %d: %w", i, err)
		}
	}
	for k, a := range clientAddrs {
		if err := book.Set(message.ClientIDBase+message.NodeID(k), a); err != nil {
			return nil, fmt.Errorf("bft: client %d: %w", k, err)
		}
	}
	return &UDPNet{inner: udpnet.NewNetwork(book)}, nil
}

// LoopbackUDP builds a UDPNetwork on 127.0.0.1 with kernel-chosen free
// ports for the given number of replicas and clients — the quickest way to
// stand up a real-sockets cluster in one process (tests, demos).
func LoopbackUDP(replicas, clients int) (*UDPNet, error) {
	book, err := udpnet.LoopbackBook(replicas, clients)
	if err != nil {
		return nil, err
	}
	return &UDPNet{inner: udpnet.NewNetwork(book)}, nil
}

// Attach implements Network.
func (u *UDPNet) Attach(id message.NodeID, h transport.Handler) transport.Transport {
	return u.inner.Attach(id, h)
}
