package bft_test

import (
	"testing"
	"time"

	"repro/bft"
	"repro/internal/kvservice"
)

func TestPublicAPIQuickstart(t *testing.T) {
	cluster := bft.NewCluster(bft.Options{Replicas: 4, Seed: 1}, kvservice.Factory)
	cluster.Start()
	defer cluster.Stop()

	client := cluster.NewClient()
	for i := 1; i <= 3; i++ {
		res, err := client.Invoke(kvservice.Incr(), false)
		if err != nil {
			t.Fatal(err)
		}
		if got := kvservice.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d -> %d", i, got)
		}
	}
	res, err := client.Invoke(kvservice.Get(), true)
	if err != nil || kvservice.DecodeU64(res) != 3 {
		t.Fatalf("get: %v %d", err, kvservice.DecodeU64(res))
	}
}

func TestPublicAPIDefaults(t *testing.T) {
	c := bft.NewCluster(bft.Options{}, kvservice.Factory)
	if c.Replicas() != 4 || c.FaultTolerance() != 1 {
		t.Fatalf("defaults: n=%d f=%d", c.Replicas(), c.FaultTolerance())
	}
	c.Start()
	defer c.Stop()
	if _, err := c.NewClient().Invoke(kvservice.Noop(), false); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIFaultInjection(t *testing.T) {
	cluster := bft.NewCluster(bft.Options{Replicas: 4, Seed: 2,
		ViewChangeTimeout: 150 * time.Millisecond}, kvservice.Factory)
	cluster.Start()
	defer cluster.Stop()
	client := cluster.NewClient()
	client.MaxRetries = 20

	if _, err := client.Invoke(kvservice.Incr(), false); err != nil {
		t.Fatal(err)
	}
	cluster.Network().Isolate(0) // kill the primary
	res, err := client.Invoke(kvservice.Incr(), false)
	if err != nil {
		t.Fatal(err)
	}
	if kvservice.DecodeU64(res) != 2 {
		t.Fatalf("got %d", kvservice.DecodeU64(res))
	}
}

func TestPublicAPIRecovery(t *testing.T) {
	cluster := bft.NewCluster(bft.Options{
		Replicas:           4,
		Seed:               3,
		CheckpointInterval: 4,
	}, kvservice.Factory)
	cluster.Start()
	defer cluster.Stop()
	client := cluster.NewClient()
	for i := 0; i < 6; i++ {
		if _, err := client.Invoke(kvservice.Incr(), false); err != nil {
			t.Fatal(err)
		}
	}
	cluster.Recover(2)
	deadline := time.Now().Add(10 * time.Second)
	for cluster.Internal().Replica(2).Recovering() {
		if time.Now().After(deadline) {
			t.Fatal("recovery stuck")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := client.Invoke(kvservice.Incr(), false); err != nil {
		t.Fatal(err)
	}
}
