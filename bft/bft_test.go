package bft_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/bft"
	"repro/bft/kv"
	"repro/internal/workload"
)

func ctxb() context.Context { return context.Background() }

func TestPublicAPIQuickstart(t *testing.T) {
	cluster := bft.NewCluster(bft.Options{Replicas: 4, Seed: 1}, kv.Factory)
	cluster.Start()
	defer cluster.Stop()

	client := cluster.NewClient()
	for i := 1; i <= 3; i++ {
		res, err := client.Invoke(ctxb(), kv.Incr())
		if err != nil {
			t.Fatal(err)
		}
		if got := kv.DecodeU64(res); got != uint64(i) {
			t.Fatalf("incr %d -> %d", i, got)
		}
	}
	res, err := client.Invoke(ctxb(), kv.Get(), bft.ReadOnly)
	if err != nil || kv.DecodeU64(res) != 3 {
		t.Fatalf("get: %v %d", err, kv.DecodeU64(res))
	}
}

func TestPublicAPIDefaults(t *testing.T) {
	c := bft.NewCluster(bft.Options{}, kv.Factory)
	if c.Replicas() != 4 || c.FaultTolerance() != 1 {
		t.Fatalf("defaults: n=%d f=%d", c.Replicas(), c.FaultTolerance())
	}
	c.Start()
	defer c.Stop()
	if _, err := c.NewClient().Invoke(ctxb(), kv.Noop()); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIFaultInjection(t *testing.T) {
	cluster := bft.NewCluster(bft.Options{Replicas: 4, Seed: 2,
		ViewChangeTimeout: 150 * time.Millisecond, MaxRetries: 20}, kv.Factory)
	cluster.Start()
	defer cluster.Stop()
	client := cluster.NewClient()

	if _, err := client.Invoke(ctxb(), kv.Incr()); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Isolate(0); err != nil { // kill the primary
		t.Fatal(err)
	}
	res, err := client.Invoke(ctxb(), kv.Incr())
	if err != nil {
		t.Fatal(err)
	}
	if kv.DecodeU64(res) != 2 {
		t.Fatalf("got %d", kv.DecodeU64(res))
	}
}

func TestPublicAPIRecovery(t *testing.T) {
	cluster := bft.NewCluster(bft.Options{
		Replicas:           4,
		Seed:               3,
		CheckpointInterval: 4,
	}, kv.Factory)
	cluster.Start()
	defer cluster.Stop()
	client := cluster.NewClient()
	for i := 0; i < 6; i++ {
		if _, err := client.Invoke(ctxb(), kv.Incr()); err != nil {
			t.Fatal(err)
		}
	}
	cluster.Recover(2)
	deadline := time.Now().Add(10 * time.Second)
	for cluster.Replica(2).Recovering() {
		if time.Now().After(deadline) {
			t.Fatal("recovery stuck")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := client.Invoke(ctxb(), kv.Incr()); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIByzantineBehavior stands faulty replicas up through the
// supported Behavior surface and checks BOTH directions: the fault is
// masked (results stay correct) AND it visibly manifests (so the test
// fails if WithBehavior silently stops reaching the engine).
func TestPublicAPIByzantineBehavior(t *testing.T) {
	// A silent primary of view 0 plus a liar: the cluster must elect a new
	// primary (publicly observable in Metrics) and still answer correctly.
	cluster := bft.NewCluster(bft.Options{Replicas: 4, Seed: 4,
		ViewChangeTimeout: 150 * time.Millisecond, MaxRetries: 30}, kv.Factory,
		bft.WithBehavior(0, bft.SilentPrimary),
		bft.WithBehavior(3, bft.WrongResult))
	cluster.Start()
	defer cluster.Stop()
	client := cluster.NewClient()
	for i := 1; i <= 3; i++ {
		res, err := client.Invoke(ctxb(), kv.Incr())
		if err != nil {
			t.Fatal(err)
		}
		if got := kv.DecodeU64(res); got != uint64(i) {
			t.Fatalf("liar leaked into certificate: incr %d -> %d", i, got)
		}
	}
	// Proof the behaviors were injected: an honest view-0 primary would
	// never have been replaced.
	if m := cluster.Replica(1).Metrics(); m.ViewChanges == 0 {
		t.Fatal("behavior not injected: silent primary caused no view change")
	}
	if v := cluster.Replica(1).View(); v == 0 {
		t.Fatal("behavior not injected: still in view 0")
	}
}

// TestInvokeContextCancellation: an in-flight Invoke against an
// unreachable cluster returns promptly with ctx.Err(), and the client
// stays usable afterwards.
func TestInvokeContextCancellation(t *testing.T) {
	cluster := bft.NewCluster(bft.Options{Replicas: 4, Seed: 5,
		RetryTimeout: 50 * time.Millisecond, MaxRetries: 1000}, kv.Factory)
	cluster.Start()
	defer cluster.Stop()
	client := cluster.NewClient()

	if _, err := client.Invoke(ctxb(), kv.Incr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cluster.Replicas(); i++ {
		if err := cluster.Isolate(i); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(ctxb(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Invoke(ctx, kv.Incr())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("cancellation took %v, not prompt", waited)
	}

	if err := cluster.Heal(); err != nil {
		t.Fatal(err)
	}
	res, err := client.Invoke(ctxb(), kv.Incr())
	if err != nil {
		t.Fatalf("client unusable after cancellation: %v", err)
	}
	if got := kv.DecodeU64(res); got != 2 {
		t.Fatalf("counter after heal: %d", got)
	}
}

// TestClientPoolConcurrency drives parallel load through a pool and checks
// every distinct principal carried traffic and the counter is exact.
func TestClientPoolConcurrency(t *testing.T) {
	cluster := bft.NewCluster(bft.Options{Replicas: 4, Seed: 6}, kv.Factory)
	cluster.Start()
	defer cluster.Stop()

	pool := cluster.NewClientPool(4)
	const ops = 24
	futures := make([]*bft.Future, ops)
	for i := range futures {
		futures[i] = pool.InvokeAsync(ctxb(), kv.Incr())
	}
	for i, f := range futures {
		if _, err := f.Wait(ctxb()); err != nil {
			t.Fatalf("async op %d: %v", i, err)
		}
	}
	res, err := cluster.NewClient().Invoke(ctxb(), kv.Get(), bft.ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	if got := kv.DecodeU64(res); got != ops {
		t.Fatalf("counter=%d want %d", got, ops)
	}
}

// TestOpenLoopOverPool runs the workload package's open-loop driver over a
// public ClientPool — the pool-backed open-loop path the benchmarks use.
func TestOpenLoopOverPool(t *testing.T) {
	cluster := bft.NewCluster(bft.Options{Replicas: 4, Seed: 7}, kv.Factory)
	cluster.Start()
	defer cluster.Stop()
	pool := cluster.NewClientPool(8)

	st := workload.RunOpenLoop(ctxb(), pool, 400, 250*time.Millisecond,
		func(int) ([]byte, bool) { return kv.Incr(), false })
	if st.Offered == 0 {
		t.Fatal("no operations offered")
	}
	if st.N == 0 {
		t.Fatal("no operations completed")
	}
	if st.Errors != 0 {
		t.Fatalf("%d errors", st.Errors)
	}
	res, err := cluster.NewClient().Invoke(ctxb(), kv.Get(), bft.ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	if got := kv.DecodeU64(res); got != uint64(st.N) {
		t.Fatalf("counter=%d but %d completions", got, st.N)
	}
}

// TestPartitionTyped: the typed partition surface drops quorum, healing
// restores it; over a real network the methods refuse.
func TestPartitionTyped(t *testing.T) {
	cluster := bft.NewCluster(bft.Options{Replicas: 4, Seed: 8,
		RetryTimeout: 50 * time.Millisecond}, kv.Factory)
	cluster.Start()
	defer cluster.Stop()
	client := cluster.NewClient()

	if _, err := client.Invoke(ctxb(), kv.Incr()); err != nil {
		t.Fatal(err)
	}
	// 2-2 split: no quorum anywhere, the op must stall until Heal.
	if err := cluster.Partition([]int{0, 1}, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(ctxb(), 300*time.Millisecond)
	_, err := client.Invoke(ctx, kv.Incr())
	cancel()
	if err == nil {
		t.Fatal("op completed across a quorum-less partition")
	}
	if err := cluster.Heal(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Invoke(ctxb(), kv.Incr()); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}
