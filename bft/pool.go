package bft

import "context"

// ClientPool fans invocations across k distinct client principals. The
// engine admits one operation in flight per principal (replicas order a
// client's requests by timestamp, §2.3.2), so the pool is the supported
// way to drive concurrent — including open-loop — load: each call checks
// out an idle principal, invokes through it, and returns it.
type ClientPool struct {
	clients []*Client
	idle    chan *Client
}

// NewClientPool builds a pool of k clients, principals first..first+k-1
// where first is 0; all k must be below opts.MaxClients. Use
// NewClientPoolAt to place several pools side by side.
func NewClientPool(k int, opts Options, net Network) *ClientPool {
	return NewClientPoolAt(0, k, opts, net)
}

// NewClientPoolAt builds a pool of k clients starting at principal first.
func NewClientPoolAt(first, k int, opts Options, net Network) *ClientPool {
	if k <= 0 {
		panic("bft: pool size must be positive")
	}
	p := &ClientPool{idle: make(chan *Client, k)}
	for i := 0; i < k; i++ {
		c := NewClient(first+i, opts, net)
		p.clients = append(p.clients, c)
		p.idle <- c
	}
	return p
}

// Size returns the number of client principals in the pool.
func (p *ClientPool) Size() int { return len(p.clients) }

// Invoke checks an idle client out of the pool (waiting, ctx-aware, when
// all k are busy), invokes through it, and returns it.
func (p *ClientPool) Invoke(ctx context.Context, op []byte, opts ...InvokeOption) ([]byte, error) {
	return p.InvokeContext(ctx, op, foldInvokeOpts(opts).readOnly)
}

// InvokeContext is the option-free form of Invoke (the library-wide
// invocation interface, so a pool drops into any driver a Client fits).
func (p *ClientPool) InvokeContext(ctx context.Context, op []byte, readOnly bool) ([]byte, error) {
	select {
	case c := <-p.idle:
		defer func() { p.idle <- c }()
		return c.InvokeContext(ctx, op, readOnly)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// InvokeAsync starts an invocation on the next idle principal and returns
// a Future. Unlike Client.InvokeAsync, up to k invocations proceed in
// parallel.
func (p *ClientPool) InvokeAsync(ctx context.Context, op []byte, opts ...InvokeOption) *Future {
	return goFuture(func() ([]byte, error) { return p.Invoke(ctx, op, opts...) })
}

// Close detaches every client in the pool. Call it after in-flight
// invocations have completed.
func (p *ClientPool) Close() {
	for _, c := range p.clients {
		c.Close()
	}
}
