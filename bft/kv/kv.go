// Package kv is the public face of the library's demo service: a counter,
// a register file, and a blob area replicated by bft. It is the service
// the examples, the quickstart, and the micro-benchmark shapes (§8.1's
// 0/0, a/0, 0/b operations) run on — import it together with repro/bft:
//
//	cluster := bft.NewCluster(bft.Options{Replicas: 4}, kv.Factory)
//	...
//	res, _ := client.Invoke(ctx, kv.Incr())
//	n := kv.DecodeU64(res)
package kv

import (
	"repro/internal/kvservice"
	"repro/internal/statemachine"
)

// MinStateSize is the smallest Options.StateSize that fits the service's
// fixed layout plus one blob page.
const MinStateSize = kvservice.MinStateSize

// Factory builds one service instance per replica; pass it to
// bft.NewReplica or bft.NewCluster.
func Factory(r *statemachine.Region) statemachine.Service {
	return kvservice.Factory(r)
}

// TimestampFactory builds the service with clock agreement enabled — the
// primary proposes its clock reading and backups accept it within a
// tolerance (the non-determinism protocol of §5.4). GetTime reads the
// agreed value.
func TimestampFactory(r *statemachine.Region) statemachine.Service {
	return kvservice.TimestampFactory(r)
}

// Noop encodes the 0/0 operation: no argument, no result.
func Noop() []byte { return kvservice.Noop() }

// Incr encodes counter++; the reply is the new value (DecodeU64).
func Incr() []byte { return kvservice.Incr() }

// Get encodes a read of the counter. It is read-only: invoke it with
// bft.ReadOnly for the single-round-trip path.
func Get() []byte { return kvservice.Get() }

// WriteBlob encodes an a/0 operation writing data into the blob area.
func WriteBlob(data []byte) []byte { return kvservice.WriteBlob(data) }

// ReadBlob encodes a 0/b operation returning n bytes from the blob area.
func ReadBlob(n int) []byte { return kvservice.ReadBlob(n) }

// SetReg encodes registers[k] = v.
func SetReg(k uint32, v uint64) []byte { return kvservice.SetReg(k, v) }

// GetReg encodes a read-only read of registers[k].
func GetReg(k uint32) []byte { return kvservice.GetReg(k) }

// GetTime encodes a read of the agreed non-deterministic value
// (TimestampFactory services).
func GetTime() []byte { return kvservice.GetTime() }

// DecodeU64 decodes the numeric replies (Incr, Get, GetReg, GetTime).
func DecodeU64(b []byte) uint64 { return kvservice.DecodeU64(b) }
