package kv

// Keyed-store surface: the sharded-deployment face of the demo service.
// A bft/sharded cluster replicates KeyedFactory in every group and routes
// each operation to the group owning its key (KeyOf); the Tx* ops are the
// building blocks of the cross-shard two-phase write protocol — see
// bft/sharded for the coordinator that drives them.

import (
	"repro/internal/kvservice"
	"repro/internal/statemachine"
)

// MinKeyedStateSize is the smallest Options.StateSize that fits the keyed
// store's layout; larger regions hold proportionally more keys.
const MinKeyedStateSize = kvservice.MinKeyedStateSize

// Key/value size caps of the keyed store.
const (
	MaxKeyLen   = kvservice.MaxKeyLen
	MaxValueLen = kvservice.MaxValueLen
)

// Status is the first byte of every keyed-store reply.
type Status = kvservice.Status

// Keyed-store reply statuses.
const (
	StatusOK        = kvservice.StatusOK
	StatusNotFound  = kvservice.StatusNotFound
	StatusBusy      = kvservice.StatusBusy
	StatusCommitted = kvservice.StatusCommitted
	StatusAborted   = kvservice.StatusAborted
	StatusUnknown   = kvservice.StatusUnknown
	StatusFull      = kvservice.StatusFull
	StatusBad       = kvservice.StatusBad
)

// KeyedFactory builds the keyed store; pass it to bft.NewReplica,
// bft.NewCluster, or (usually) sharded.New.
func KeyedFactory(r *statemachine.Region) statemachine.Service {
	return kvservice.KeyedFactory(r)
}

// TxKV is one staged write of a TxLock operation.
type TxKV = kvservice.TxKV

// Put encodes a single-key write. now is the caller's wall clock in
// nanoseconds; it only advances the store's lease frame (lock TTLs), it
// never affects the value written.
func Put(now uint64, key, val []byte) []byte { return kvservice.KPut(now, key, val) }

// GetKey encodes a read-only fetch of one key (invoke with bft.ReadOnly
// for the single-round-trip quorum read).
func GetKey(key []byte) []byte { return kvservice.KGet(key) }

// TxLock encodes phase 1 of a cross-shard write for one group: lock and
// stage every listed key under txid with a TTL lease, recording the tx's
// home group for coordinator recovery.
func TxLock(now, txid uint64, home uint32, ttl uint64, kvs []TxKV) []byte {
	return kvservice.TxLock(now, txid, home, ttl, kvs)
}

// TxCommit encodes phase 2: apply txid's staged writes and release.
func TxCommit(now, txid uint64) []byte { return kvservice.TxCommit(now, txid) }

// TxAbort encodes the release path; force aborts even inside the lease
// (a coordinator abandoning its own tx), while force=false is the
// recovery form that refuses until the TTL passes.
func TxAbort(now, txid uint64, force bool) []byte { return kvservice.TxAbort(now, txid, force) }

// TxStatus encodes the read-only outcome probe for txid.
func TxStatus(txid uint64) []byte { return kvservice.TxStatus(txid) }

// DecodeStatus reads the status byte of any keyed-store reply.
func DecodeStatus(res []byte) Status { return kvservice.DecodeStatus(res) }

// DecodeValue decodes a successful GetKey reply.
func DecodeValue(res []byte) ([]byte, bool) { return kvservice.DecodeValue(res) }

// BusyInfo is the lock-holder identity carried by a StatusBusy reply.
type BusyInfo = kvservice.BusyInfo

// DecodeBusy decodes the holder identity from a StatusBusy reply.
func DecodeBusy(res []byte) (BusyInfo, bool) { return kvservice.DecodeBusy(res) }

// KeyOf extracts the routing key of a keyed-store op: the key of a
// Put/GetKey, or the first key of a TxLock. Tx finish/status ops are
// routed by group, not key, and return false.
func KeyOf(op []byte) ([]byte, bool) { return kvservice.KeyOf(op) }
